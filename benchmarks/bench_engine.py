"""Microbenchmarks: compiled evaluation engine vs reference dict engine.

Times the two backends of :mod:`repro.engine` on the workloads that dominate
the experiment suite:

* ``elimination`` -- full-instance partition functions and marginals under
  varying pinnings (the inner loop of SSM measurement and the
  phase-transition sweep) on hardcore / Ising / coloring instances;
* ``ssm_inference`` -- :class:`TruncatedBallInference` marginals at every
  node over several rounds (the Theorem 5.1 workload; the ball-compilation
  cache makes repeated rounds nearly free for the compiled engine);
* ``glauber`` -- single-site conditional throughput of the Glauber chain.

Run directly to (re)record the JSON baseline::

    PYTHONPATH=src python benchmarks/bench_engine.py  # writes BENCH_engine.json

or under pytest (with the other benchmarks) for a quick regression check.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, random_tree
from repro.inference import TruncatedBallInference
from repro.models import coloring_model, hardcore_model, ising_model
from repro.sampling import glauber_sample

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _time(function: Callable[[], object]) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def _elimination_workload(engine: str) -> Callable[[int], object]:
    """Partition functions + marginals under distinct pinnings (no memo hits).

    The pinned values vary with the repeat counter so the compiled engine's
    marginal memo cannot turn the repeats into cache hits -- this workload
    measures raw contraction throughput.
    """
    models = [
        hardcore_model(cycle_graph(24), fugacity=1.2),
        ising_model(cycle_graph(20), interaction=0.3, external_field=0.1),
        coloring_model(cycle_graph(16), num_colors=3),
    ]

    def run(iteration: int = 0) -> None:
        for distribution in models:
            nodes = distribution.nodes
            for trial in range(8):
                index = (3 * trial + iteration) % len(nodes)
                pinning = {nodes[index]: distribution.alphabet[0]}
                distribution.partition_function(pinning, engine=engine)
                distribution.marginal(nodes[(index + 7) % len(nodes)], pinning, engine=engine)

    return run


def _ssm_inference_workload(engine: str) -> Callable[[int], object]:
    """Truncated-ball marginals at every node, repeated over rounds.

    Repeats deliberately re-query the same balls: this is the access pattern
    of the Theorem 5.1 engines and the JVV passes, which the compiled
    engine's ball/marginal caches are designed for.
    """
    distribution = hardcore_model(random_tree(40, seed=2), fugacity=1.0)
    instance = SamplingInstance(distribution, {0: 0})
    inference = TruncatedBallInference(radius=3, engine=engine)

    def run(iteration: int = 0) -> None:
        for _round in range(3):
            for node in instance.free_nodes:
                inference.marginal(instance, node, error=0.05)

    return run


def _glauber_workload(engine: str) -> Callable[[int], object]:
    """Single-site conditional throughput (5000 chain steps)."""
    distribution = coloring_model(cycle_graph(30), num_colors=4)
    instance = SamplingInstance(distribution)

    def run(iteration: int = 0) -> None:
        glauber_sample(instance, steps=5000, seed=11 + iteration, engine=engine)

    return run


def _phase_transition_workload(engine: str) -> Callable[[int], object]:
    """Root marginals under many boundary pinnings (the E8 sweep pattern).

    The boundary values vary with the repeat counter (same pinned *domain*,
    fresh values), matching ``boundary_influence``'s enumeration and keeping
    the compiled engine's marginal memo out of the measurement.
    """
    import networkx as nx

    distribution = hardcore_model(nx.balanced_tree(2, 4), fugacity=1.5)
    leaves = [node for node, degree in distribution.graph.degree() if degree == 1]

    def run(iteration: int = 0) -> None:
        for trial in range(24):
            mask = 24 * iteration + trial
            pinning = {
                leaf: (mask >> (i % 8)) & 1 for i, leaf in enumerate(leaves[:8])
            }
            if distribution.partition_function(pinning, engine=engine) <= 0.0:
                continue
            distribution.marginal(0, pinning, engine=engine)

    return run


WORKLOADS = {
    "elimination": _elimination_workload,
    "ssm_inference": _ssm_inference_workload,
    "glauber": _glauber_workload,
    "phase_transition": _phase_transition_workload,
}


def run(repeats: int = 3) -> List[Dict[str, object]]:
    """Time every workload under both engines; report the best of ``repeats``."""
    rows: List[Dict[str, object]] = []
    for name, factory in WORKLOADS.items():
        timings = {}
        for engine in ("dict", "compiled"):
            # Best-of-N on one workload instance: the first repeat pays any
            # compilation/caching cost, the best repeat measures steady state
            # (both engines keep their instance-level caches warm).  The
            # iteration counter lets raw-throughput workloads vary their
            # queries so result memos cannot short-circuit the measurement.
            workload = factory(engine)
            best = np.inf
            for iteration in range(repeats):
                best = min(best, _time(lambda: workload(iteration)))
            timings[engine] = best
        rows.append(
            {
                "workload": name,
                "dict_seconds": timings["dict"],
                "compiled_seconds": timings["compiled"],
                "speedup": timings["dict"] / timings["compiled"],
            }
        )
    return rows


def ball_cache_stats() -> Dict[str, int]:
    """The engine's ball-cache counters after the SSM workload, obs off.

    ``BallCache.stats()`` (hits, misses, compiles, adoptions, memo-cap
    drops) is always-on bookkeeping -- no observability handle needed --
    so the baseline can document the cache behaviour behind the
    ``ssm_inference`` speedup: the repeated rounds re-query the same
    balls and should hit far more often than they compile.
    """
    distribution = hardcore_model(random_tree(40, seed=2), fugacity=1.0)
    instance = SamplingInstance(distribution, {0: 0})
    inference = TruncatedBallInference(radius=3, engine="compiled")
    for _round in range(3):
        for node in instance.free_nodes:
            inference.marginal(instance, node, error=0.05)
    return distribution.ball_cache().stats()


def record_baseline(path: Path = BASELINE_PATH, repeats: int = 3) -> Dict[str, object]:
    """Run the benchmark and write the JSON baseline next to the repo root."""
    rows = run(repeats=repeats)
    payload = {
        "benchmark": "bench_engine",
        "description": "compiled (array/tensor-contraction) vs dict elimination engine",
        "workloads": rows,
        "min_speedup": min(row["speedup"] for row in rows),
        "ball_cache": ball_cache_stats(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def test_compiled_engine_is_faster(once=None) -> None:
    """The compiled engine beats the dict engine on every workload.

    The recorded baseline (BENCH_engine.json) documents the actual ratios;
    this guard only asserts a conservative floor so CI noise cannot flake.
    """
    rows = run(repeats=2) if once is None else once(run, repeats=2)
    print()
    for row in rows:
        print(
            f"{row['workload']:>14}: dict {row['dict_seconds'] * 1e3:8.2f} ms   "
            f"compiled {row['compiled_seconds'] * 1e3:8.2f} ms   "
            f"speedup {row['speedup']:6.2f}x"
        )
    for row in rows:
        assert row["speedup"] > 1.5, f"workload {row['workload']} regressed: {row}"


if __name__ == "__main__":
    result = record_baseline()
    for row in result["workloads"]:
        print(
            f"{row['workload']:>14}: dict {row['dict_seconds'] * 1e3:8.2f} ms   "
            f"compiled {row['compiled_seconds'] * 1e3:8.2f} ms   "
            f"speedup {row['speedup']:6.2f}x"
        )
    stats = result["ball_cache"]
    print(
        "    ball cache: "
        + "  ".join(f"{key}={stats[key]}" for key in sorted(stats))
    )
    print(f"baseline written to {BASELINE_PATH}")
