"""E10 benchmark -- anti-ferromagnetic two-spin models in the uniqueness regime.

Regenerates the accuracy table across interaction strengths; the claim is
that fixed-depth correlation-decay inference is accurate while the model is
in the uniqueness regime and degrades once it leaves it.
"""

from repro.experiments import e10_ising
from repro.experiments.common import format_table


def test_e10_antiferromagnetic_ising(once):
    rows = once(e10_ising.run, interactions=(-0.1, -0.3, -0.6, -1.2), degree=3, nodes=14, depth=4)
    print()
    print(format_table(rows, title="E10: anti-ferromagnetic Ising, uniqueness vs accuracy"))
    unique_rows = [row for row in rows if row["uniqueness"]]
    non_unique_rows = [row for row in rows if not row["uniqueness"]]
    assert unique_rows, "some interaction should be inside the uniqueness regime"
    for row in unique_rows:
        assert row["worst_marginal_tv"] <= 0.1
    if non_unique_rows:
        # Outside the regime the same depth is no longer sufficient.
        assert max(row["worst_marginal_tv"] for row in non_unique_rows) >= max(
            row["worst_marginal_tv"] for row in unique_rows
        )
