"""E2 benchmark -- Theorem 3.4: sampling => approximate inference.

Regenerates the table of marginal errors recovered from repeated sampler
runs; the claim is that every probed node's marginal is within
``delta + epsilon_0`` of the truth plus estimation noise.
"""

import math

from repro.experiments import e02_reduction_inference
from repro.experiments.common import format_table


def test_e02_sampling_to_inference(once):
    delta, num_samples = 0.05, 250
    rows = once(e02_reduction_inference.run, delta=delta, num_samples=num_samples)
    print()
    print(format_table(rows, title="E2: sampling => inference (Theorem 3.4)"))
    noise = 3.0 * math.sqrt(1.0 / num_samples)
    for row in rows:
        assert row["marginal_tv"] <= delta + noise
        assert row["rounds"] >= 1
