"""E8 benchmark -- the computational phase transition at the uniqueness threshold.

Regenerates the table of long-range correlation and required inference radius
on a complete binary tree for fugacities on both sides of lambda_c(3) = 4.
The claim (Corollary 5.3 + the FSY17 lower bound): below the threshold the
required radius is small and the boundary influence decays; above it the
influence persists and the radius reaches the depth of the tree.
"""

from repro.experiments import e08_phase_transition
from repro.experiments.common import format_table


def test_e08_phase_transition(once):
    rows = once(
        e08_phase_transition.run,
        fugacity_ratios=(0.2, 0.5, 2.0, 5.0),
        depth=4,
        error=0.05,
    )
    print()
    print(format_table(rows, title="E8: computational phase transition (hardcore on a binary tree)"))
    summary = e08_phase_transition.transition_gap(rows)
    print(f"summary: {summary}")

    below = [row for row in rows if row["uniqueness"]]
    above = [row for row in rows if not row["uniqueness"]]
    assert below and above
    # Below the threshold the decay is already visible at this depth: the
    # deepest-in-uniqueness setting needs strictly less than the full depth.
    assert min(row["radius_lower_bound"] for row in below) <= 3
    # Above the threshold: the boundary influence exceeds every below-threshold
    # influence and the implied lower bound reaches (essentially) the full depth.
    assert min(row["boundary_influence"] for row in above) > max(
        row["boundary_influence"] for row in below
    )
    assert all(row["radius_hit_diameter"] for row in above)
