"""E6 benchmark -- hardcore model in the uniqueness regime: polylog rounds.

Regenerates the rounds-versus-n table for inference, approximate sampling
(with the Lemma 3.1 overhead) and exact JVV sampling; the claim is that the
round complexity grows far slower than linearly in n (polylogarithmically).
"""

from repro.experiments import e06_hardcore_rounds
from repro.experiments.common import format_table


def test_e06_hardcore_round_scaling(once):
    rows = once(e06_hardcore_rounds.run, sizes=(8, 16, 32, 64))
    print()
    print(format_table(rows, title="E6: hardcore (uniqueness regime) round complexity"))
    for row in rows:
        assert row["sample_feasible"]
    # Sub-linear growth: the fitted exponent of rounds against n stays well
    # below 1 for every measured pipeline stage.
    for column in ("inference_rounds", "sampling_rounds", "exact_rounds"):
        exponent = e06_hardcore_rounds.fitted_exponent(rows, column)
        assert exponent < 0.8, f"{column} grew too fast (exponent {exponent:.2f})"
    # Inference alone is logarithmic: doubling n adds O(1) rounds.
    assert rows[-1]["inference_rounds"] - rows[0]["inference_rounds"] <= 10
