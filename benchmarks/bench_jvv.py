"""E4 benchmark -- Theorem 4.2: the distributed JVV sampler.

Regenerates two tables: the exactness check (empirical distribution of
accepted runs versus the enumerated target) and the failure-probability
scaling against the instance size.
"""

from repro.experiments import e04_jvv
from repro.experiments.common import format_table


def test_e04_jvv_exactness(once):
    rows = once(e04_jvv.run_exactness, sizes=(5, 6), target_accepted=200)
    print()
    print(format_table(rows, title="E4a: local-JVV exactness (Theorem 4.2)"))
    for row in rows:
        assert row["accepted"] >= 200
        # Within three standard deviations of pure sampling noise.
        assert row["empirical_tv"] <= 3.0 * row["noise_floor"]


def test_e04_jvv_failure_scaling(once):
    rows = once(e04_jvv.run_failure_scaling, sizes=(4, 6, 8, 10), runs_per_size=40)
    print()
    print(format_table(rows, title="E4b: local-JVV failure probability ~ O(1/n)"))
    # The failure rate tracks the 1 - exp(-3/n) prediction and the largest
    # instance fails no more often than the smallest (up to binomial noise).
    assert rows[-1]["failure_rate"] <= rows[0]["failure_rate"] + 0.2
    for row in rows:
        assert abs(row["failure_rate"] - row["predicted_rate"]) <= 0.3
