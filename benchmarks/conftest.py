"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one experiment (E1 -- E12, see DESIGN.md
and EXPERIMENTS.md).  The experiment logic lives in
:mod:`repro.experiments`; the benchmarks run it once under pytest-benchmark
(to record wall-clock cost), print the regenerated table, and assert the
*shape* of the result the paper predicts.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    The experiments are themselves statistical (they average over many
    samples internally), so repeating them for timing stability would only
    waste the benchmark budget.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(function, *args, **kwargs):
        return run_once(benchmark, function, *args, **kwargs)

    return runner
