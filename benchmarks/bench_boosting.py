"""E3 benchmark -- Lemma 4.1: boosting TV accuracy to multiplicative accuracy.

Regenerates the table comparing the base engine's and the boosted engine's
multiplicative errors; the claim is that the boosted error is within the
requested epsilon for every model and accuracy.
"""

from repro.experiments import e03_boosting
from repro.experiments.common import format_table


def test_e03_boosting_lemma(once):
    rows = once(e03_boosting.run, epsilons=(0.5, 0.2))
    print()
    print(format_table(rows, title="E3: boosting lemma (Lemma 4.1)"))
    for row in rows:
        assert row["boosted_mult_err"] <= row["epsilon"] + 1e-9
        # The boosted engine also keeps (indeed improves) the TV accuracy.
        assert row["boosted_tv"] <= row["epsilon"]
        assert row["boosted_rounds"] >= 1
