"""Benchmarks: serial vs batched vs process execution backends.

Times the :mod:`repro.runtime` backends on chain workloads shaped like the
baseline-comparison experiment (E12: many independent LubyGlauber/Glauber
chains of a hardcore instance, one sample per chain):

* ``luby_chains`` -- 64 LubyGlauber chains, the E12 access pattern: the
  serial baseline loops ``luby_glauber_sample`` once per seed, the batched
  backend advances all chains as one ``(chains, n)`` code matrix.  Both
  produce bit-identical samples per seed, so the speedup is pure execution
  strategy.
* ``glauber_chains`` -- 256 single-site Glauber chains, same comparison.
* ``jvv_chains`` -- 128 JVV rejection-resampling chains
  (:class:`repro.sampling.jvv.JVVKernel`, the E12 jvv-kernel row): the
  serial baseline loops ``jvv_rejection_sample`` once per seed, the
  batched backend advances all chains as one code matrix with per-chain
  acceptance masks.  Bit-identity (states *and* per-chain failure counts)
  is asserted before any timing.
* ``process_ball_shards`` / ``process_ball_shards_shm`` -- the E5/E8
  per-node ball computations (Theorem 5.1 marginals at every node) serial
  vs sharded over a 2-worker process pool, once over the default pickle
  transport and once with ``transport="shm"`` (the ``InstanceSpec`` dense
  arrays cross as shared-memory descriptors instead of by value).
  Recorded for observability; on a single-core container the fork
  overhead typically makes both *slower*, which is exactly what the JSON
  should document.  Only the batched chain workloads feed
  ``min_batched_speedup``.
* ``process_shard_phase_residual`` -- the same workload instrumented per
  phase (spawn / map / compute / merge) for both transports: *why* the
  2-worker shard cannot reach 1x vs serial on this box.  Spawn is pool
  creation plus the per-worker initializer round trip (where the spec
  crosses the pipe -- by value under pickle, as descriptors under shm),
  map is serializing and enqueueing the chunk payloads, compute is
  waiting for the workers' chunk results, merge is adopting the shipped
  balls/memos into the parent cache and building the result dict.  Each
  instrumented run is asserted bit-identical to the serial loop before
  its timings are recorded.
* ``packed_multi_instance`` -- many small same-alphabet models advanced
  as ONE padded ``(total_chains, n_max)`` code matrix
  (``Runtime.run_packed``) vs looping one batched ``run_chains`` call per
  model (the pre-packing serving path).  Every packed group is asserted
  bit-identical to the kernel's serial chains before any timing; the
  recorded speedup is the cross-model batching win the serving layer's
  ``PackedCoalescer`` rides.
* ``streaming_ball_shards`` -- the same E5-style workload on the barrier
  API (``shard_padded_ball_marginals``, which returns nothing until every
  shard lands) vs the streaming API (``stream_padded_ball_marginals``,
  which yields each shard as its future completes).  The headline number is
  *time to first shard result*: the streaming consumer starts measuring
  while the remaining balls are still compiling, so its first result must
  land strictly before the barrier call returns at all.  Streamed marginals
  are asserted bit-identical to the serial loop before timing.
* ``cluster_ball_shards_2w`` / ``cluster_ball_shards_4w`` -- the same
  workload dispatched over 2 (resp. 4) *localhost cluster workers* (real
  ``repro-cluster-worker`` subprocesses behind the framed-pickle TCP
  transport of :mod:`repro.cluster`) vs the 2-worker process pool.
  Recorded for observability.  Two effects show up: the cluster's
  persistent workers receive the ``InstanceSpec`` once per connection and
  keep their ball memos warm across calls (the process pool re-ships the
  spec on every call), which can put the 2-worker cluster *ahead* on
  repeated queries; while extra workers beyond the core count just add
  scheduling and framing tax on one host -- the sharing a multi-machine
  deployment fixes with real hardware.  Cluster marginals are asserted
  bit-identical to the serial loop before timing; worker spawn/connect
  time is excluded (a deployment pays it once).
* ``cluster_auth_overhead_2w`` -- the same workload over 2 localhost
  cluster workers with the transport plain vs HMAC-SHA256-authenticated
  (``auth_key=`` on both sides: every frame carries a 32-byte tag,
  verified before unpickling).  Records what frame authentication costs
  on the wire; both sides are asserted bit-identical to the serial loop
  before timing -- authentication must never change answers.
* ``serve_coalescing`` -- 16 concurrent HTTP sample requests against one
  in-process :mod:`repro.serve` server, ``max_batch=1`` (every request is
  its own ``run_chains`` call) vs ``max_batch=16`` (the coalescer folds
  the burst into one batched code-matrix call).  The per-request seed
  contract keeps every coalesced response bit-identical to a solo
  request; identity and the batch count are asserted on real JSON
  responses before any timing.

Run directly to (re)record the JSON baseline::

    PYTHONPATH=src python benchmarks/bench_runtime.py  # writes BENCH_runtime.json

or under pytest (with the other benchmarks) for a quick regression check.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, random_tree
from repro.models import hardcore_model
from repro.runtime import (
    Runtime,
    batched_glauber_sample,
    batched_luby_glauber_sample,
    chain_seed_sequences,
    shard_padded_ball_marginals,
    stream_padded_ball_marginals,
)
from repro.sampling.glauber import glauber_sample, luby_glauber_sample

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"


def _best_of(function, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _luby_chain_workload(chains: int = 64, rounds: int = 60, size: int = 48):
    instance = SamplingInstance(hardcore_model(cycle_graph(size), fugacity=1.2))
    seeds = chain_seed_sequences(9, chains)
    glauber_sample(instance, 1, seed=0)  # pay the one-time compilation

    def serial() -> None:
        for seed in seeds:
            luby_glauber_sample(instance, rounds, seed=seed)

    def batched() -> None:
        batched_luby_glauber_sample(instance, rounds, seeds=seeds)

    return {"chains": chains, "rounds": rounds, "n": size}, serial, batched


def _glauber_chain_workload(chains: int = 256, steps: int = 1200, size: int = 64):
    instance = SamplingInstance(hardcore_model(cycle_graph(size), fugacity=1.2))
    seeds = chain_seed_sequences(5, chains)
    glauber_sample(instance, 1, seed=0)

    def serial() -> None:
        for seed in seeds:
            glauber_sample(instance, steps, seed=seed)

    def batched() -> None:
        batched_glauber_sample(instance, steps, seeds=seeds)

    return {"chains": chains, "steps": steps, "n": size}, serial, batched


def _jvv_chain_workload(chains: int = 128, scans: int = 20, size: int = 64):
    from repro.runtime import ChainBatch
    from repro.sampling.jvv import JVV_KERNEL, jvv_rejection_sample

    instance = SamplingInstance(hardcore_model(cycle_graph(size), fugacity=1.2))
    seeds = chain_seed_sequences(13, chains)
    steps = scans * len(instance.free_nodes)
    glauber_sample(instance, 1, seed=0)  # pay the one-time compilation

    # Correctness gate before any timing: the batched rejection chains must
    # be bit-identical to the serial kernel -- final states AND per-chain
    # failure counts (the acceptance contract of ISSUE 5).
    reference = [
        jvv_rejection_sample(instance, steps, seed=seed, return_failures=True)
        for seed in seeds
    ]
    batch = ChainBatch(instance, seeds=seeds)
    batch.advance(JVV_KERNEL, steps)
    assert batch.configurations() == [state for state, _ in reference], (
        "batched JVV states diverge from the serial chain"
    )
    assert JVV_KERNEL.failure_counts(batch).tolist() == [
        failures for _, failures in reference
    ], "batched JVV failure counts diverge from the serial chain"

    def serial() -> None:
        for seed in seeds:
            jvv_rejection_sample(instance, steps, seed=seed)

    def batched() -> None:
        fresh = ChainBatch(instance, seeds=seeds)
        fresh.advance(JVV_KERNEL, steps)
        fresh.configurations()

    return {"chains": chains, "steps": steps, "n": size}, serial, batched


def _obs_overhead_workload(chains: int = 256, steps: int = 1200, size: int = 64):
    """The batched-chains workload with observability off vs on.

    Prices the repro.obs contract on the hottest instrumented path: with
    no handle installed, the guarded call sites in run_chains /
    ChainBatch.advance must be near-free (the "off" leg is the
    instrumented code, obs disabled), and enabling metrics + tracing must
    never change the sampled states -- bit-identity is asserted before
    any timing.
    """
    from repro import obs

    instance = SamplingInstance(hardcore_model(cycle_graph(size), fugacity=1.2))
    seeds = chain_seed_sequences(5, chains)
    runtime = Runtime("batched", n_chains=chains)
    reference = runtime.run_chains("glauber", instance, steps, seeds=seeds)

    # Correctness gate before any timing: tracing draws ids from
    # os.urandom, never from NumPy streams, so states must match exactly.
    obs.enable()
    try:
        traced = runtime.run_chains("glauber", instance, steps, seeds=seeds)
    finally:
        obs.disable()
    assert traced == reference, "observability changed the sampled states"

    def off() -> None:
        runtime.run_chains("glauber", instance, steps, seeds=seeds)

    def on() -> None:
        obs.enable()
        try:
            runtime.run_chains("glauber", instance, steps, seeds=seeds)
        finally:
            obs.disable()

    return {"chains": chains, "steps": steps, "n": size}, off, on


def _serve_coalescing_workload(
    n_requests: int = 16, count: int = 600, size: int = 64, max_batch: int = 16
):
    """The serving layer's cross-request coalescing win (ISSUE 8).

    ``n_requests`` concurrent HTTP clients hit one ``repro-serve`` model.
    With ``max_batch=1`` every request is its own ``run_chains`` call
    (the no-coalescing control); with ``max_batch=n_requests`` the
    coalescer folds the burst into one batched code-matrix call.  The
    seed contract makes both paths bit-identical to a solo request, so
    the speedup is pure batching -- and it is asserted (together with
    the batch count) on real JSON responses before any timing.
    """
    import asyncio

    from repro.serve.client import request_json, sample_payload
    from repro.serve.registry import ModelRegistry, build_instance, encode_state
    from repro.serve.server import SamplingServer

    spec = {
        "family": "hardcore",
        "graph": {"kind": "cycle", "n": size},
        "fugacity": 1.2,
        "pinning": {"0": 1},
    }
    instance, _ = build_instance(spec)
    nodes = list(instance.distribution.graph)

    # Solo baseline: each request's seed through run_chains on its own.
    with Runtime("batched") as runtime:
        solo = {
            seed: json.loads(
                json.dumps(
                    [
                        encode_state(nodes, state)
                        for state in runtime.run_chains(
                            "glauber", instance, count, seed=seed
                        )
                    ]
                )
            )
            for seed in range(n_requests)
        }

    def burst(batch_limit: int, check: bool = False) -> float:
        async def go() -> float:
            registry = ModelRegistry()
            registry.register_payload("hc", spec)
            server = SamplingServer(
                registry=registry,
                max_batch=batch_limit,
                max_wait_ms=100.0 if batch_limit > 1 else 0.0,
                max_queue=4 * n_requests,
            )
            host, port = await server.start()
            try:
                # Warm the connection path and the compiled engine.
                await request_json(
                    host, port, "POST", "/v1/sample",
                    sample_payload("hc", count=1, seed=999),
                )
                start = time.perf_counter()
                responses = await asyncio.gather(
                    *[
                        request_json(
                            host, port, "POST", "/v1/sample",
                            sample_payload("hc", count=count, seed=seed),
                        )
                        for seed in range(n_requests)
                    ]
                )
                elapsed = time.perf_counter() - start
                if check:
                    batches = set()
                    for seed, (status, body) in enumerate(responses):
                        assert status == 200, f"seed {seed}: HTTP {status}: {body}"
                        assert body["states"] == solo[seed], (
                            f"coalesced response for seed {seed} is not "
                            "bit-identical to the solo run"
                        )
                        batches.add(body["batch_id"])
                    limit = -(-n_requests // batch_limit)  # ceil
                    assert len(batches) <= limit, (
                        f"{n_requests} requests ran {len(batches)} batches "
                        f"(limit {limit} at max_batch={batch_limit})"
                    )
                return elapsed
            finally:
                await server.close()

        return asyncio.run(go())

    # Correctness gate before any timing (the acceptance contract): the
    # coalesced path must coalesce AND stay bit-identical.
    burst(max_batch, check=True)

    def solo_serving() -> float:
        return burst(1)

    def coalesced_serving() -> float:
        return burst(max_batch)

    shape = {
        "requests": n_requests,
        "count": count,
        "n": size,
        "max_batch": max_batch,
    }
    return shape, solo_serving, coalesced_serving


def _cd_negative_phase_workload(
    size: int = 16,
    samples: int = 200,
    burn_in: int = 150,
    max_iter: int = 10,
    n_negative: int = 64,
    k: int = 5,
):
    """Contrastive-divergence fits, serial vs batched negative phase (ISSUE 9).

    The CD estimator's inner loop is ``Runtime.run_chains`` over
    ``n_negative`` short chains per gradient step; this times a whole short
    fit with that negative phase looped serially vs advanced as one
    ``(chains, n)`` code matrix.  The per-iteration seed contract makes the
    two fits produce bit-identical weights -- asserted before any timing.
    """
    from repro.learning import IsingFamily, Trainer, encode_configurations
    from repro.models import ising_model

    graph = cycle_graph(size)
    truth = ising_model(graph, interaction=0.4, external_field=0.25)
    data = Runtime("batched", n_chains=samples).run_chains(
        "glauber", SamplingInstance(truth, {}), burn_in, seed=42
    )
    family = IsingFamily(graph)
    codes = encode_configurations(family.template().compiled_engine(), data)
    options = dict(method="cd", max_iter=max_iter, n_negative=n_negative, k=k, seed=0)

    # Correctness gate before any timing (the acceptance contract): the
    # fitted weights must be bit-identical across the two backends.
    serial_theta = Trainer(family, runtime="serial", **options).fit(codes).theta
    batched_theta = Trainer(family, runtime="batched", **options).fit(codes).theta
    assert np.array_equal(serial_theta, batched_theta), (
        "CD fitted weights diverge between the serial and batched runtimes"
    )

    def serial() -> None:
        Trainer(family, runtime="serial", **options).fit(codes)

    def batched() -> None:
        Trainer(family, runtime="batched", **options).fit(codes)

    shape = {
        "samples": samples,
        "n": size,
        "iterations": max_iter,
        "negative_chains": n_negative,
        "k": k,
    }
    return shape, serial, batched


def _process_shard_workload(
    size: int = 40, radius: int = 3, n_workers: int = 2, transport: str = "pickle"
):
    from repro.inference.ssm_inference import padded_ball_marginal

    distribution = hardcore_model(random_tree(size, seed=2), fugacity=1.0)
    instance = SamplingInstance(distribution, {0: 0})
    nodes = instance.free_nodes

    if transport != "pickle":
        # Correctness gate before any timing: the shared-memory transport
        # must never change answers, only how the spec crosses the pipe.
        serial_reference = {
            node: padded_ball_marginal(instance, node, radius) for node in nodes
        }
        distribution.ball_cache().clear()
        sharded_result = shard_padded_ball_marginals(
            instance, nodes, radius, n_workers=n_workers, transport=transport
        )
        assert sharded_result == serial_reference, (
            f"transport={transport!r} shard diverges from the serial loop"
        )

    def serial() -> None:
        distribution.ball_cache().clear()
        for node in nodes:
            padded_ball_marginal(instance, node, radius)

    def sharded() -> None:
        distribution.ball_cache().clear()
        shard_padded_ball_marginals(
            instance, nodes, radius, n_workers=n_workers, transport=transport
        )

    shape = {
        "nodes": len(nodes),
        "radius": radius,
        "workers": n_workers,
        "transport": transport,
    }
    return shape, serial, sharded


def _shard_phase_residual(size: int = 40, radius: int = 3, n_workers: int = 2):
    """Per-phase residual of the sharded ball workload, per transport.

    On a single-core container the process shard of the E5 workload cannot
    reach 1x vs serial; this measures *why* by splitting one real sharded
    run into spawn (pool creation + per-worker initializer round trip --
    the phase where the :class:`InstanceSpec` crosses the pipe, by value
    under pickle, as shared-memory descriptors under shm), map
    (serializing and enqueueing the chunk payloads), compute (waiting for
    the workers' chunk results) and merge (adopting the shipped
    balls/extras/memos into the parent cache and building the result
    dict).  The instrumented pipeline is the same machinery
    ``shard_padded_ball_marginals`` drives, and every instrumented run is
    asserted bit-identical to the serial loop before its timings count.
    """
    from concurrent.futures import ProcessPoolExecutor, as_completed

    from repro.inference.ssm_inference import padded_ball_marginal
    from repro.runtime.shards import (
        MEMO_DELTA_CAP,
        InstanceSpec,
        _ball_marginal_chunk,
        _chunk_tasks,
        _install_worker_spec,
        _spec_wire,
    )

    distribution = hardcore_model(random_tree(size, seed=2), fugacity=1.0)
    instance = SamplingInstance(distribution, {0: 0})
    nodes = instance.free_nodes
    tasks = [(node, radius) for node in nodes]
    serial_reference = {
        node: padded_ball_marginal(instance, node, radius) for node in nodes
    }

    def phases(transport: str) -> Dict[str, float]:
        distribution.ball_cache().clear()
        spec = InstanceSpec.from_instance(instance)
        chunks = _chunk_tasks(tasks, n_workers, None)
        start = time.perf_counter()
        wire_spec, pack = _spec_wire(spec, transport)
        try:
            with ProcessPoolExecutor(
                max_workers=min(n_workers, len(chunks)),
                initializer=_install_worker_spec,
                initargs=(wire_spec, None),
            ) as pool:
                # Per-worker warm-up round trip (best effort): forces the
                # worker processes to start and run the initializer before
                # any real work, so spec transfer lands in this phase.
                for future in [
                    pool.submit(_ball_marginal_chunk, [], MEMO_DELTA_CAP)
                    for _ in range(n_workers)
                ]:
                    future.result()
                spawned = time.perf_counter()
                futures = [
                    pool.submit(_ball_marginal_chunk, chunk, MEMO_DELTA_CAP)
                    for chunk in chunks
                ]
                mapped = time.perf_counter()
                payloads = [future.result() for future in as_completed(futures)]
                computed = time.perf_counter()
                cache = instance.distribution.ball_cache()
                results: Dict[object, Dict[object, float]] = {}
                for marginals, balls, extras, memos in payloads:
                    cache.adopt(balls=balls, extras=extras, memos=memos)
                    for (center, _), marginal in marginals.items():
                        results[center] = marginal
                merged = time.perf_counter()
        finally:
            if pack is not None:
                pack.release()
        assert results == serial_reference, (
            f"instrumented {transport!r} shard diverges from the serial loop"
        )
        return {
            "spawn_seconds": spawned - start,
            "map_seconds": mapped - spawned,
            "compute_seconds": computed - mapped,
            "merge_seconds": merged - computed,
            "total_seconds": merged - start,
        }

    shape = {"nodes": len(nodes), "radius": radius, "workers": n_workers}
    return shape, phases


def _packed_multi_instance_workload(
    models: int = 8, chains: int = 8, steps: int = 400, size: int = 24
):
    """Many small same-alphabet models in ONE padded code matrix (ISSUE 10).

    The loop leg advances one batched ``run_chains`` call per model (the
    pre-packing serving path); the packed leg folds all models into a
    single padded ``(total_chains, n_max)`` code matrix via
    ``Runtime.run_packed``.  Sizes differ per model so the pack really
    pads and masks.  Every packed group is asserted bit-identical to the
    kernel's serial chains before any timing.
    """
    from repro.sampling import get_kernel

    instances = [
        SamplingInstance(
            hardcore_model(cycle_graph(size + group), fugacity=1.0 + group / 20)
        )
        for group in range(models)
    ]
    seeds = [chain_seed_sequences(17 + group, chains) for group in range(models)]
    runtime = Runtime("batched")
    kernel = get_kernel("glauber")

    # Correctness gate before any timing (the acceptance contract): chain c
    # of packed group g == the kernel's serial chain with seed seeds[g][c].
    # This also pays each model's one-time engine compilation.
    reference = [
        [kernel.serial_run(instance, steps, seed=seed) for seed in seeds[group]]
        for group, instance in enumerate(instances)
    ]
    packed = runtime.run_packed("glauber", list(zip(instances, seeds)), steps)
    assert packed == reference, "packed groups diverge from the serial chains"

    def loop() -> None:
        for group, instance in enumerate(instances):
            runtime.run_chains("glauber", instance, steps, seeds=seeds[group])

    def packed_run() -> None:
        runtime.run_packed("glauber", list(zip(instances, seeds)), steps)

    shape = {
        "models": models,
        "chains_per_model": chains,
        "steps": steps,
        "n_min": size,
        "n_max": size + models - 1,
    }
    return shape, loop, packed_run


def _streaming_shard_workload(size: int = 40, radius: int = 3, n_workers: int = 2):
    from repro.inference.ssm_inference import padded_ball_marginal

    distribution = hardcore_model(random_tree(size, seed=2), fugacity=1.0)
    instance = SamplingInstance(distribution, {0: 0})
    nodes = instance.free_nodes

    # Correctness gate before any timing: streamed per-ball results must be
    # bit-identical to the serial backend (the acceptance contract).
    serial_reference = {
        node: padded_ball_marginal(instance, node, radius) for node in nodes
    }
    distribution.ball_cache().clear()
    streamed = dict(
        stream_padded_ball_marginals(instance, nodes, radius, n_workers=n_workers)
    )
    assert streamed == serial_reference, "streamed results diverge from serial"

    def barrier() -> None:
        distribution.ball_cache().clear()
        shard_padded_ball_marginals(instance, nodes, radius, n_workers=n_workers)

    def streaming() -> tuple:
        distribution.ball_cache().clear()
        start = time.perf_counter()
        first = None
        for _ in stream_padded_ball_marginals(
            instance, nodes, radius, n_workers=n_workers
        ):
            if first is None:
                first = time.perf_counter() - start
        return first, time.perf_counter() - start

    shape = {"nodes": len(nodes), "radius": radius, "workers": n_workers}
    return shape, barrier, streaming


def _cluster_shard_workload(
    n_workers: int, size: int = 40, radius: int = 3, process_workers: int = 2
):
    """Process pool vs ``n_workers`` localhost cluster workers, E5 workload."""
    from repro.cluster.coordinator import ClusterCoordinator
    from repro.cluster.local import spawn_workers
    from repro.inference.ssm_inference import padded_ball_marginal

    distribution = hardcore_model(random_tree(size, seed=2), fugacity=1.0)
    instance = SamplingInstance(distribution, {0: 0})
    nodes = instance.free_nodes

    pool = spawn_workers(n_workers)
    try:
        coordinator = ClusterCoordinator(pool.addresses)

        # Correctness gate before any timing (the acceptance contract).
        serial_reference = {
            node: padded_ball_marginal(instance, node, radius) for node in nodes
        }
        distribution.ball_cache().clear()
        clustered = dict(
            coordinator.stream_padded_ball_marginals(instance, nodes, radius)
        )
        assert clustered == serial_reference, "cluster results diverge from serial"
    except BaseException:
        # The caller only learns about teardown() on success; release the
        # workers (and the coordinator, if it connected) ourselves.
        try:
            coordinator.shutdown()
        except NameError:
            pass
        pool.terminate()
        raise

    def process() -> None:
        distribution.ball_cache().clear()
        shard_padded_ball_marginals(instance, nodes, radius, n_workers=process_workers)

    def cluster() -> None:
        distribution.ball_cache().clear()
        for _ in coordinator.stream_padded_ball_marginals(instance, nodes, radius):
            pass

    def teardown() -> None:
        coordinator.shutdown()
        pool.terminate()

    shape = {
        "nodes": len(nodes),
        "radius": radius,
        "cluster_workers": n_workers,
        "process_workers": process_workers,
    }
    return shape, process, cluster, teardown


def _cluster_auth_workload(n_workers: int = 2, size: int = 40, radius: int = 3):
    """Plain vs HMAC-authenticated cluster transport, same E5 workload."""
    from repro.cluster.coordinator import ClusterCoordinator
    from repro.cluster.local import spawn_workers
    from repro.inference.ssm_inference import padded_ball_marginal

    distribution = hardcore_model(random_tree(size, seed=2), fugacity=1.0)
    instance = SamplingInstance(distribution, {0: 0})
    nodes = instance.free_nodes
    key = "bench-hmac-secret"

    serial_reference = {
        node: padded_ball_marginal(instance, node, radius) for node in nodes
    }

    stack: List[object] = []
    try:
        plain_pool = spawn_workers(n_workers)
        stack.append(plain_pool.terminate)
        plain = ClusterCoordinator(plain_pool.addresses)
        stack.append(plain.shutdown)
        keyed_pool = spawn_workers(n_workers, auth_key=key)
        stack.append(keyed_pool.terminate)
        keyed = ClusterCoordinator(keyed_pool.addresses, auth_key=key)
        stack.append(keyed.shutdown)

        # Correctness gate before any timing: authentication is transport
        # dressing -- both sides must reproduce the serial loop exactly.
        for coordinator in (plain, keyed):
            distribution.ball_cache().clear()
            result = dict(
                coordinator.stream_padded_ball_marginals(instance, nodes, radius)
            )
            assert result == serial_reference, (
                "cluster results diverge from serial"
            )
    except BaseException:
        for release in reversed(stack):
            release()
        raise

    def plain_run() -> None:
        distribution.ball_cache().clear()
        for _ in plain.stream_padded_ball_marginals(instance, nodes, radius):
            pass

    def hmac_run() -> None:
        distribution.ball_cache().clear()
        for _ in keyed.stream_padded_ball_marginals(instance, nodes, radius):
            pass

    def teardown() -> None:
        for release in reversed(stack):
            release()

    shape = {"nodes": len(nodes), "radius": radius, "cluster_workers": n_workers}
    return shape, plain_run, hmac_run, teardown


def run(
    repeats: int = 3, cluster: bool = True, serve: bool = True
) -> List[Dict[str, object]]:
    """Time the backends; report the best of ``repeats`` per side."""
    rows: List[Dict[str, object]] = []
    for name, factory in (
        ("luby_chains", _luby_chain_workload),
        ("glauber_chains", _glauber_chain_workload),
        ("jvv_chains", _jvv_chain_workload),
    ):
        shape, serial, batched = factory()
        serial_seconds = _best_of(serial, repeats)
        batched_seconds = _best_of(batched, repeats)
        rows.append(
            {
                "workload": name,
                "backend_pair": "serial-vs-batched",
                "shape": shape,
                "serial_seconds": serial_seconds,
                "batched_seconds": batched_seconds,
                "speedup": serial_seconds / batched_seconds,
            }
        )
    shape, cd_serial, cd_batched = _cd_negative_phase_workload()
    cd_serial_seconds = _best_of(cd_serial, repeats)
    cd_batched_seconds = _best_of(cd_batched, repeats)
    rows.append(
        {
            "workload": "cd_negative_phase",
            "backend_pair": "cd-serial-vs-batched",
            "shape": shape,
            "serial_seconds": cd_serial_seconds,
            "batched_seconds": cd_batched_seconds,
            "speedup": cd_serial_seconds / cd_batched_seconds,
            "bit_identical_across_backends": True,
        }
    )
    shape, obs_off, obs_on = _obs_overhead_workload()
    off_seconds = _best_of(obs_off, repeats)
    on_seconds = _best_of(obs_on, repeats)
    rows.append(
        {
            "workload": "obs_overhead_batched",
            "backend_pair": "obs-off-vs-on",
            "shape": shape,
            "off_seconds": off_seconds,
            "on_seconds": on_seconds,
            "overhead": on_seconds / off_seconds,
            "bit_identical_to_serial": True,
        }
    )
    if serve:
        shape, solo_serving, coalesced_serving = _serve_coalescing_workload()
        solo_seconds = min(solo_serving() for _ in range(repeats))
        coalesced_seconds = min(coalesced_serving() for _ in range(repeats))
        rows.append(
            {
                "workload": "serve_coalescing",
                "backend_pair": "solo-vs-coalesced",
                "shape": shape,
                "solo_seconds": solo_seconds,
                "coalesced_seconds": coalesced_seconds,
                "speedup": solo_seconds / coalesced_seconds,
                "bit_identical_to_solo": True,
            }
        )
    shape, loop, packed_run = _packed_multi_instance_workload()
    loop_seconds = _best_of(loop, repeats)
    packed_seconds = _best_of(packed_run, repeats)
    rows.append(
        {
            "workload": "packed_multi_instance",
            "backend_pair": "loop-vs-packed",
            "shape": shape,
            "loop_seconds": loop_seconds,
            "packed_seconds": packed_seconds,
            "speedup": loop_seconds / packed_seconds,
            "bit_identical_to_serial": True,
        }
    )
    for transport in ("pickle", "shm"):
        shape, serial, sharded = _process_shard_workload(transport=transport)
        serial_seconds = _best_of(serial, repeats)
        process_seconds = _best_of(sharded, repeats)
        row = {
            "workload": (
                "process_ball_shards"
                if transport == "pickle"
                else "process_ball_shards_shm"
            ),
            "backend_pair": "serial-vs-process",
            "shape": shape,
            "serial_seconds": serial_seconds,
            "process_seconds": process_seconds,
            "speedup": serial_seconds / process_seconds,
        }
        if transport != "pickle":
            row["bit_identical_to_serial"] = True
        rows.append(row)
    shape, phases = _shard_phase_residual()
    residual: Dict[str, Dict[str, float]] = {}
    for transport in ("pickle", "shm"):
        best = None
        for _ in range(repeats):
            sample = phases(transport)
            if best is None or sample["total_seconds"] < best["total_seconds"]:
                best = sample
        residual[transport] = best
    rows.append(
        {
            "workload": "process_shard_phase_residual",
            "backend_pair": "phase-residual",
            "shape": shape,
            "phases": residual,
            "bit_identical_to_serial": True,
            "note": (
                "why the 2-worker shard stays below 1x vs serial on a "
                "single-core container: spawn is pool creation + the "
                "per-worker initializer round trip (where the InstanceSpec "
                "crosses -- by value under pickle, as shared-memory "
                "descriptors under shm), map is chunk-payload enqueueing, "
                "compute is waiting for the workers' chunk results (cold "
                "workers recompile their chunks' balls and ship them back, "
                "which time-sliced on one core costs more than the whole "
                "serial loop), merge adopts the shipped balls/memos into "
                "the parent cache -- so compute + spawn together exceed "
                "the serial wall regardless of transport"
            ),
        }
    )
    shape, barrier, streaming = _streaming_shard_workload()
    barrier_seconds = _best_of(barrier, repeats)
    first_result_seconds = np.inf
    streaming_seconds = np.inf
    for _ in range(repeats):
        first, wall = streaming()
        first_result_seconds = min(first_result_seconds, first)
        streaming_seconds = min(streaming_seconds, wall)
    rows.append(
        {
            "workload": "streaming_ball_shards",
            "backend_pair": "barrier-vs-streaming",
            "shape": shape,
            "barrier_wall_seconds": barrier_seconds,
            "time_to_first_result_seconds": first_result_seconds,
            "streaming_wall_seconds": streaming_seconds,
            "first_result_speedup": barrier_seconds / first_result_seconds,
            "bit_identical_to_serial": True,
        }
    )
    if cluster:
        for n_workers in (2, 4):
            shape, process, clustered, teardown = _cluster_shard_workload(n_workers)
            try:
                process_seconds = _best_of(process, repeats)
                cluster_seconds = _best_of(clustered, repeats)
            finally:
                teardown()
            row = {
                "workload": f"cluster_ball_shards_{n_workers}w",
                "backend_pair": "process-vs-cluster",
                "shape": shape,
                "process_seconds": process_seconds,
                "cluster_seconds": cluster_seconds,
                "speedup": process_seconds / cluster_seconds,
                "bit_identical_to_serial": True,
            }
            if n_workers == 4:
                # The coordinator's default chunking used to target ~4
                # chunks per worker regardless of fleet size, so 4 workers
                # split these 39 tasks into 13 tiny chunks and the framing
                # tax sank the 4w run to 0.837x of the 2w process pool
                # (previous recorded baseline).  The chunk count is now
                # capped (8 chunks here) -- this row records the after.
                row["chunk_granularity_fix"] = {
                    "speedup_before": 0.8374,
                    "chunks_before": 13,
                    "chunks_after": 8,
                }
            rows.append(row)
        shape, plain_run, hmac_run, teardown = _cluster_auth_workload()
        try:
            plain_seconds = _best_of(plain_run, repeats)
            hmac_seconds = _best_of(hmac_run, repeats)
        finally:
            teardown()
        rows.append(
            {
                "workload": "cluster_auth_overhead_2w",
                "backend_pair": "plain-vs-hmac",
                "shape": shape,
                "plain_seconds": plain_seconds,
                "hmac_seconds": hmac_seconds,
                "overhead": hmac_seconds / plain_seconds,
                "bit_identical_to_serial": True,
            }
        )
    return rows


def record_baseline(path: Path = BASELINE_PATH, repeats: int = 3) -> Dict[str, object]:
    """Run the benchmark and write the JSON baseline next to the repo root."""
    rows = run(repeats=repeats)
    batched = [row for row in rows if row["backend_pair"] == "serial-vs-batched"]
    streaming = [row for row in rows if row["backend_pair"] == "barrier-vs-streaming"]
    clustered = [row for row in rows if row["backend_pair"] == "process-vs-cluster"]
    payload = {
        "benchmark": "bench_runtime",
        "description": (
            "execution backends of repro.runtime: looped serial chains vs the "
            "batched (chains, n) code-matrix runner for the Glauber, "
            "LubyGlauber and JVV-rejection kernels (batched JVV bit-identity "
            "-- states and per-chain failure counts -- asserted pre-timing), "
            "the 2-worker process shard of the per-node ball computations "
            "(informational), the barrier vs streaming (futures + "
            "as_completed) shard executor on the E5-style workload "
            "(time-to-first-shard-result), and the same workload over 2/4 "
            "localhost repro.cluster TCP workers (single-host transport tax, "
            "bit-identity asserted pre-timing), plus the same cluster "
            "workload with the transport plain vs HMAC-SHA256-authenticated "
            "(per-frame tag verified before unpickling; bit-identity "
            "asserted pre-timing on both sides), plus the batched-chains "
            "workload with observability off vs on (repro.obs metrics + "
            "tracing; the off leg prices the guarded instrumentation "
            "residue, bit-identity asserted pre-timing), plus the serving "
            "layer's cross-request coalescing: 16 concurrent HTTP sample "
            "requests against one repro-serve model with max_batch=1 (one "
            "run_chains call per request) vs max_batch=16 (the burst folds "
            "into one batched code-matrix call); the seed contract keeps "
            "every coalesced response bit-identical to a solo request, "
            "asserted on real JSON responses -- with the batch count -- "
            "before any timing, plus the learning layer's contrastive-"
            "divergence fit with its run_chains negative phase looped "
            "serially vs advanced as one batched code matrix (fitted "
            "weights asserted bit-identical across the backends before "
            "any timing), plus the zero-copy data plane of ISSUE 10: the "
            "2-worker ball shard over the pickle vs shared-memory "
            "transport (InstanceSpec dense arrays crossing as segment "
            "descriptors; bit-identity asserted pre-timing), the same "
            "workload's per-phase residual (spawn/map/compute/merge, both "
            "transports -- documenting why the shard stays below 1x vs "
            "serial on a single-core container), and packed multi-"
            "instance batching: many small same-alphabet models advanced "
            "as one padded (total_chains, n_max) code matrix via "
            "Runtime.run_packed vs looping one batched run_chains call "
            "per model (every packed group asserted bit-identical to the "
            "kernel's serial chains pre-timing)"
        ),
        "workloads": rows,
        "min_batched_speedup": min(row["speedup"] for row in batched),
        "streaming_first_result_beats_barrier": all(
            row["time_to_first_result_seconds"] < row["barrier_wall_seconds"]
            for row in streaming
        ),
        "cluster_bit_identical_to_serial": all(
            row["bit_identical_to_serial"] for row in clustered
        ),
        "hmac_bit_identical_to_serial": all(
            row["bit_identical_to_serial"]
            for row in rows
            if row["backend_pair"] == "plain-vs-hmac"
        ),
        "obs_bit_identical": all(
            row["bit_identical_to_serial"]
            for row in rows
            if row["backend_pair"] == "obs-off-vs-on"
        ),
        "serve_bit_identical_to_solo": all(
            row["bit_identical_to_solo"]
            for row in rows
            if row["backend_pair"] == "solo-vs-coalesced"
        ),
        "cd_bit_identical_across_backends": all(
            row["bit_identical_across_backends"]
            for row in rows
            if row["backend_pair"] == "cd-serial-vs-batched"
        ),
        "packed_bit_identical_to_serial": all(
            row["bit_identical_to_serial"]
            for row in rows
            if row["backend_pair"] == "loop-vs-packed"
        ),
        "shm_bit_identical_to_serial": all(
            row["bit_identical_to_serial"]
            for row in rows
            if row["backend_pair"] in ("phase-residual",)
            or row["workload"] == "process_ball_shards_shm"
        ),
        "shard_phase_residual_documented": any(
            row["backend_pair"] == "phase-residual" for row in rows
        ),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def _print_rows(rows: List[Dict[str, object]]) -> None:
    for row in rows:
        if row["backend_pair"] == "obs-off-vs-on":
            print(
                f"{row['workload']:>22}: off {row['off_seconds'] * 1e3:8.1f} ms   "
                f"on {row['on_seconds'] * 1e3:8.1f} ms   "
                f"overhead {row['overhead']:6.2f}x   {row['shape']}"
            )
            continue
        if row["backend_pair"] == "solo-vs-coalesced":
            print(
                f"{row['workload']:>22}: solo {row['solo_seconds'] * 1e3:8.1f} ms   "
                f"coalesced {row['coalesced_seconds'] * 1e3:8.1f} ms   "
                f"speedup {row['speedup']:6.2f}x   {row['shape']}"
            )
            continue
        if row["backend_pair"] == "plain-vs-hmac":
            print(
                f"{row['workload']:>22}: plain {row['plain_seconds'] * 1e3:8.1f} ms   "
                f"hmac {row['hmac_seconds'] * 1e3:8.1f} ms   "
                f"overhead {row['overhead']:6.2f}x   {row['shape']}"
            )
            continue
        if row["backend_pair"] == "process-vs-cluster":
            print(
                f"{row['workload']:>22}: process {row['process_seconds'] * 1e3:8.1f} ms   "
                f"cluster {row['cluster_seconds'] * 1e3:8.1f} ms   "
                f"speedup {row['speedup']:6.2f}x   {row['shape']}"
            )
            continue
        if row["backend_pair"] == "loop-vs-packed":
            print(
                f"{row['workload']:>22}: loop {row['loop_seconds'] * 1e3:8.1f} ms   "
                f"packed {row['packed_seconds'] * 1e3:8.1f} ms   "
                f"speedup {row['speedup']:6.2f}x   {row['shape']}"
            )
            continue
        if row["backend_pair"] == "phase-residual":
            for transport, timings in row["phases"].items():
                print(
                    f"{row['workload']:>22}: [{transport:>6}] "
                    f"spawn {timings['spawn_seconds'] * 1e3:7.1f} ms   "
                    f"map {timings['map_seconds'] * 1e3:6.1f} ms   "
                    f"compute {timings['compute_seconds'] * 1e3:7.1f} ms   "
                    f"merge {timings['merge_seconds'] * 1e3:6.1f} ms"
                )
            continue
        if row["backend_pair"] == "barrier-vs-streaming":
            print(
                f"{row['workload']:>22}: barrier {row['barrier_wall_seconds'] * 1e3:8.1f} ms   "
                f"first result {row['time_to_first_result_seconds'] * 1e3:8.1f} ms   "
                f"stream wall {row['streaming_wall_seconds'] * 1e3:8.1f} ms   "
                f"ttfr speedup {row['first_result_speedup']:6.2f}x   {row['shape']}"
            )
            continue
        other = row.get("batched_seconds", row.get("process_seconds"))
        print(
            f"{row['workload']:>22}: serial {row['serial_seconds'] * 1e3:8.1f} ms   "
            f"other {other * 1e3:8.1f} ms   speedup {row['speedup']:6.2f}x   "
            f"{row['shape']}"
        )


def test_batched_runner_amortises_the_python_loop(once=None) -> None:
    """The batched backend beats looping the serial chain on both workloads.

    BENCH_runtime.json documents the recorded ratios (>= 5x); this guard
    asserts a conservative floor so CI noise cannot flake.  The cluster
    rows are excluded here (worker subprocess spawn would dominate the
    benchmark budget); the recorded JSON documents them.
    """
    if once is None:
        rows = run(repeats=2, cluster=False)
    else:
        rows = once(run, repeats=2, cluster=False)
    print()
    _print_rows(rows)
    for row in rows:
        if row["backend_pair"] == "serial-vs-batched":
            assert row["speedup"] > 2.5, f"workload {row['workload']} regressed: {row}"
        if row["backend_pair"] == "barrier-vs-streaming":
            # The acceptance contract of the streaming executor: the first
            # shard result lands strictly before the barrier call returns.
            assert (
                row["time_to_first_result_seconds"] < row["barrier_wall_seconds"]
            ), f"streaming lost its overlap win: {row}"
        if row["backend_pair"] == "solo-vs-coalesced":
            # BENCH_runtime.json documents the recorded ratio (>= 3x); this
            # is a conservative floor so CI noise cannot flake.
            assert row["speedup"] > 1.5, f"serving coalescing regressed: {row}"
        if row["backend_pair"] == "cd-serial-vs-batched":
            # The CD fit also pays objective-side work per iteration, so its
            # floor is more modest than the raw chain workloads'.
            assert row["speedup"] > 1.2, f"CD negative phase regressed: {row}"
        if row["backend_pair"] == "loop-vs-packed":
            # The ISSUE 10 acceptance floor: one padded code matrix over
            # all models must at least double the per-model loop
            # (BENCH_runtime.json records ~4x).
            assert row["speedup"] > 2.0, f"packed batching regressed: {row}"
        if row["backend_pair"] == "phase-residual":
            # The residual must actually be decomposed: every phase
            # measured, for both transports.
            for timings in row["phases"].values():
                assert set(timings) >= {
                    "spawn_seconds", "map_seconds", "compute_seconds", "merge_seconds",
                }, f"phase residual incomplete: {row}"


if __name__ == "__main__":
    result = record_baseline()
    _print_rows(result["workloads"])
    print(f"min batched speedup: {result['min_batched_speedup']:.2f}x")
    print(f"baseline written to {BASELINE_PATH}")
