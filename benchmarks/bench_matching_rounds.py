"""E7 benchmark -- matchings: O(sqrt(Delta) log^3 n) rounds.

Regenerates the locality-versus-degree table for the monomer--dimer model;
the claim is that the required locality scales like sqrt(Delta) (exponent
close to 1/2, clearly below 1).
"""

from repro.experiments import e07_matching_rounds
from repro.experiments.common import format_table


def test_e07_matching_degree_scaling(once):
    rows = once(e07_matching_rounds.run, degrees=(2, 4, 8, 16))
    print()
    print(format_table(rows, title="E7: matching locality vs maximum degree"))
    exponent = e07_matching_rounds.fitted_degree_exponent(rows)
    assert 0.2 <= exponent <= 0.85, f"locality should scale ~sqrt(Delta), got exponent {exponent:.2f}"
    # The mixing scale itself is Theta(sqrt(Delta)).
    for row in rows:
        assert row["mixing_scale"] <= 3.0 * row["sqrt_degree"]
        assert row["mixing_scale"] >= 0.5 * row["sqrt_degree"]


def test_e07_matching_sample_validity(once):
    valid, rounds = once(e07_matching_rounds.sample_one_matching, degree=4, nodes=12, seed=3)
    print(f"\nE7b: sampled matching valid={valid}, rounds={rounds}")
    assert valid
    assert rounds >= 1
