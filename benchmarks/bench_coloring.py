"""E9 benchmark -- colorings of triangle-free graphs with q >= alpha* Delta.

Regenerates the accuracy table across the number of colors; the claim is that
inside the Gamarnik--Katz--Misra regime the BP-based inference is accurate
and the sampled colorings are proper.
"""

from repro.experiments import e09_coloring
from repro.experiments.common import format_table


def test_e09_triangle_free_colorings(once):
    rows = once(e09_coloring.run, color_counts=(3, 4, 6), degree=2, half_size=6)
    print()
    print(format_table(rows, title="E9: colorings of triangle-free graphs (q vs alpha* Delta)"))
    for row in rows:
        assert row["sample_is_proper"]
        if row["in_ssm_regime"]:
            assert row["worst_marginal_tv"] <= 0.1
    # The regime flag turns on once q exceeds alpha* * Delta.
    assert [row["in_ssm_regime"] for row in rows] == sorted(
        row["in_ssm_regime"] for row in rows
    )
