"""E12 benchmark -- local-JVV versus Markov-chain baselines.

Regenerates the sampler-comparison table on a small hardcore instance; the
claim is that the JVV output (conditioned on acceptance) is statistically
indistinguishable from the target, that the sequential sampler matches it,
and that a short LubyGlauber chain is measurably worse than a long one.
"""

from repro.experiments import e12_baselines
from repro.experiments.common import format_table


def test_e12_baseline_comparison(once):
    rows = once(
        e12_baselines.run,
        cycle_size=6,
        fugacity=1.0,
        samples=220,
        glauber_rounds=(1, 10, 40),
    )
    print()
    print(format_table(rows, title="E12: samplers compared on hardcore C6 (lambda = 1)"))
    by_name = {row["sampler"]: row for row in rows}

    short_chain = by_name["luby-glauber(1 rounds)"]
    long_chain = by_name["luby-glauber(40 rounds)"]
    jvv = by_name["local-JVV (Thm 4.2)"]
    sequential = by_name["sequential (Thm 3.2)"]

    # A barely-run chain has not mixed; a long chain has (allow a little
    # Monte-Carlo slack: both measurements share the same noise floor).
    assert long_chain["tv_to_target"] <= short_chain["tv_to_target"] + 0.05
    # The exact and near-exact samplers sit at the statistical noise floor.
    assert jvv["tv_to_target"] <= 3.0 * jvv["noise_floor"]
    assert sequential["tv_to_target"] <= 3.0 * sequential["noise_floor"] + 0.05
