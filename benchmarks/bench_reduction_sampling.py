"""E1 benchmark -- Theorem 3.2: inference => approximate sampling.

Regenerates the table of worst per-node marginal error and round complexity
of the sequential sampler at two target accuracies, and checks the paper's
claim: the measured error stays within the requested delta (plus Monte-Carlo
noise) for every model.
"""

import math

from repro.experiments import e01_reduction_sampling
from repro.experiments.common import format_table


def test_e01_inference_to_sampling(once):
    rows = once(e01_reduction_sampling.run, errors=(0.2, 0.05), samples_per_setting=120)
    print()
    print(format_table(rows, title="E1: inference => sampling (Theorem 3.2)"))
    noise = math.sqrt(2.0 / (4.0 * 120)) * 3.0
    for row in rows:
        assert row["worst_marginal_tv"] <= row["delta"] + noise
        assert row["rounds"] >= 1


def test_e01_with_lemma31_scheduler(once):
    rows = once(
        e01_reduction_sampling.run,
        errors=(0.1,),
        samples_per_setting=40,
        use_scheduler=True,
    )
    print()
    print(format_table(rows, title="E1b: same reduction through the LOCAL scheduler (Lemma 3.1)"))
    for row in rows:
        assert row["mode"] == "local"
        # The scheduler multiplies the locality by the decomposition overhead.
        assert row["rounds"] > 10
