"""Tests for the shared inference interface helpers (ball restriction)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import total_variation
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph, random_tree
from repro.inference.base import ball_instance, marginal_in_ball
from repro.models import hardcore_model


class TestBallInstance:
    def test_contains_only_ball_factors(self):
        distribution = hardcore_model(cycle_graph(8), fugacity=1.0)
        instance = SamplingInstance(distribution, {0: 1, 4: 0})
        nodes, tables, pinning = ball_instance(instance, 0, 1)
        assert nodes == {7, 0, 1}
        # Factors: three vertex activities + the two edges inside the ball.
        assert len(tables) == 5
        assert pinning == {0: 1}

    def test_radius_zero(self):
        distribution = hardcore_model(path_graph(5), fugacity=2.0)
        instance = SamplingInstance(distribution)
        nodes, tables, pinning = ball_instance(instance, 2, 0)
        assert nodes == {2}
        assert len(tables) == 1
        assert pinning == {}

    def test_whole_graph_ball_recovers_instance(self):
        distribution = hardcore_model(cycle_graph(6), fugacity=1.0)
        instance = SamplingInstance(distribution, {0: 1})
        nodes, tables, _ = ball_instance(instance, 0, 6)
        assert nodes == set(distribution.graph.nodes())
        assert len(tables) == len(distribution.factors)


class TestMarginalInBall:
    def test_full_ball_matches_exact(self):
        distribution = hardcore_model(cycle_graph(7), fugacity=1.3)
        instance = SamplingInstance(distribution, {0: 1})
        for node in (2, 3, 5):
            local = marginal_in_ball(instance, node, 7)
            exact = instance.target_marginal(node)
            assert total_variation(local, exact) < 1e-9

    def test_extra_pinning_is_applied(self):
        distribution = hardcore_model(path_graph(5), fugacity=1.0)
        instance = SamplingInstance(distribution)
        pinned = marginal_in_ball(instance, 2, 1, extra_pinning={1: 1})
        assert pinned[1] == pytest.approx(0.0)

    def test_extra_pinning_outside_ball_is_ignored(self):
        distribution = hardcore_model(path_graph(7), fugacity=1.0)
        instance = SamplingInstance(distribution)
        with_far_pin = marginal_in_ball(instance, 0, 1, extra_pinning={6: 1})
        without = marginal_in_ball(instance, 0, 1)
        assert with_far_pin == without

    @given(seed=st.integers(0, 50), radius=st.integers(1, 4))
    @settings(max_examples=15, deadline=None)
    def test_ball_marginal_error_shrinks_with_radius_on_trees(self, seed, radius):
        tree = random_tree(12, seed=seed)
        distribution = hardcore_model(tree, fugacity=1.0)
        instance = SamplingInstance(distribution)
        node = 5
        exact = instance.target_marginal(node)
        small = total_variation(marginal_in_ball(instance, node, radius), exact)
        large = total_variation(marginal_in_ball(instance, node, radius + 2), exact)
        assert large <= small + 1e-9
