"""Unit tests for uniqueness thresholds and decay-rate constants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    ALPHA_STAR,
    hardcore_uniqueness_threshold,
    hypergraph_matching_uniqueness_threshold,
    is_two_spin_uniqueness,
    matching_ssm_decay_rate,
)
from repro.models.thresholds import hardcore_uniqueness_margin, two_spin_tree_fixed_point


class TestHardcoreThreshold:
    def test_known_values(self):
        # lambda_c(3) = 4, lambda_c(4) = 27/16, lambda_c(5) = 256/243.
        assert hardcore_uniqueness_threshold(3) == pytest.approx(4.0)
        assert hardcore_uniqueness_threshold(4) == pytest.approx(27.0 / 16.0)
        assert hardcore_uniqueness_threshold(5) == pytest.approx(256.0 / 243.0)

    def test_low_degree_is_always_unique(self):
        assert math.isinf(hardcore_uniqueness_threshold(2))
        assert math.isinf(hardcore_uniqueness_threshold(0))

    def test_threshold_decreases_with_degree(self):
        values = [hardcore_uniqueness_threshold(d) for d in range(3, 10)]
        assert all(earlier > later for earlier, later in zip(values, values[1:]))

    def test_margin_classification(self):
        in_regime, ratio = hardcore_uniqueness_margin(1.0, 3)
        assert in_regime and ratio == pytest.approx(0.25)
        out_regime, ratio = hardcore_uniqueness_margin(5.0, 3)
        assert not out_regime and ratio > 1

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            hardcore_uniqueness_margin(0.0, 3)


class TestHypergraphThreshold:
    def test_rank_two_recovers_hardcore(self):
        assert hypergraph_matching_uniqueness_threshold(2, 5) == pytest.approx(
            hardcore_uniqueness_threshold(5)
        )

    def test_threshold_decreases_with_rank(self):
        assert hypergraph_matching_uniqueness_threshold(3, 5) < hypergraph_matching_uniqueness_threshold(2, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            hypergraph_matching_uniqueness_threshold(1, 5)


class TestAlphaStar:
    def test_alpha_star_solves_equation(self):
        assert ALPHA_STAR == pytest.approx(math.exp(1.0 / ALPHA_STAR), abs=1e-9)
        assert 1.763 < ALPHA_STAR < 1.764


class TestMatchingDecayRate:
    def test_rate_in_unit_interval(self):
        for degree in (1, 2, 5, 20):
            rate = matching_ssm_decay_rate(degree)
            assert 0.0 <= rate < 1.0

    def test_rate_grows_with_degree(self):
        assert matching_ssm_decay_rate(16) > matching_ssm_decay_rate(4)

    def test_sqrt_delta_scaling(self):
        # 1 / (1 - rate) should scale like sqrt(Delta): quadrupling the degree
        # roughly doubles the mixing time scale.
        scale_4 = 1.0 / (1.0 - matching_ssm_decay_rate(4))
        scale_16 = 1.0 / (1.0 - matching_ssm_decay_rate(16))
        assert scale_16 / scale_4 == pytest.approx(2.0, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            matching_ssm_decay_rate(3, edge_weight=0.0)
        assert matching_ssm_decay_rate(0) == 0.0


class TestTwoSpinUniqueness:
    def test_hardcore_parameters_match_threshold(self):
        # beta=0, gamma=1 is the hardcore model: uniqueness iff lambda < lambda_c.
        delta = 5
        threshold = hardcore_uniqueness_threshold(delta)
        assert is_two_spin_uniqueness(0.0, 1.0, 0.9 * threshold, delta)
        assert not is_two_spin_uniqueness(0.0, 1.0, 1.5 * threshold, delta)

    def test_ferromagnetic_like_models_are_unique_at_low_degree(self):
        assert is_two_spin_uniqueness(0.8, 0.8, 1.0, 2)

    def test_fixed_point_is_a_fixed_point(self):
        beta, gamma, lam, degree = 0.3, 1.0, 1.0, 3
        x = two_spin_tree_fixed_point(beta, gamma, lam, degree)
        recomputed = lam * ((beta * x + 1.0) / (x + gamma)) ** degree
        assert x == pytest.approx(recomputed, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            is_two_spin_uniqueness(-1.0, 1.0, 1.0, 3)

    @given(lam=st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=10, deadline=None)
    def test_small_fugacity_always_unique(self, lam):
        assert is_two_spin_uniqueness(0.0, 1.0, lam, 6)
