"""Tests for the exact enumeration sampler (the ground-truth baseline)."""

import math

import pytest

from repro.analysis import empirical_distribution, total_variation
from repro.analysis.distances import configuration_key
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.models import hardcore_model, matching_model
from repro.sampling import ExactSampler, enumerate_target_distribution


class TestEnumerateTargetDistribution:
    def test_probabilities_sum_to_one(self, pinned_hardcore_instance):
        distribution = enumerate_target_distribution(pinned_hardcore_instance)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_matches_target_probability(self, hardcore_instance):
        distribution = enumerate_target_distribution(hardcore_instance)
        for key, probability in list(distribution.items())[:5]:
            assert probability == pytest.approx(
                hardcore_instance.target_probability(dict(key))
            )

    def test_pinning_respected(self, pinned_hardcore_instance):
        distribution = enumerate_target_distribution(pinned_hardcore_instance)
        for key in distribution:
            assert dict(key)[0] == 1
            assert dict(key)[3] == 0

    def test_infeasible_pinning_raises(self, hardcore_cycle):
        instance = SamplingInstance(hardcore_cycle, {0: 1, 1: 1})
        with pytest.raises(ValueError):
            enumerate_target_distribution(instance)


class TestExactSampler:
    def test_support_size(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(5), fugacity=1.0))
        sampler = ExactSampler(instance)
        assert sampler.support_size == 11

    def test_samples_are_feasible(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(6), fugacity=1.5), {0: 1})
        sampler = ExactSampler(instance, seed=3)
        for sample in sampler.samples(50):
            assert instance.distribution.weight(sample) > 0
            assert sample[0] == 1

    def test_empirical_distribution_converges(self):
        instance = SamplingInstance(hardcore_model(path_graph(4), fugacity=1.0))
        sampler = ExactSampler(instance, seed=0)
        truth = enumerate_target_distribution(instance)
        samples = [configuration_key(sample) for sample in sampler.samples(3000)]
        empirical = empirical_distribution(samples)
        # 8 outcomes, 3000 samples: expected TV well below 0.08.
        assert total_variation(empirical, truth) < 0.08

    def test_probability_of(self):
        instance = SamplingInstance(hardcore_model(path_graph(3), fugacity=1.0))
        sampler = ExactSampler(instance)
        empty = {0: 0, 1: 0, 2: 0}
        assert sampler.probability_of(empty) == pytest.approx(1.0 / 5.0)
        assert sampler.probability_of({0: 1, 1: 1, 2: 0}) == 0.0

    def test_reproducibility(self):
        instance = SamplingInstance(matching_model(path_graph(5)))
        first = ExactSampler(instance, seed=9).samples(10)
        second = ExactSampler(instance, seed=9).samples(10)
        assert first == second
