"""Unit tests for the graph locality primitives."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    ball,
    ball_subgraph,
    boundary,
    cycle_graph,
    diameter,
    distance,
    distances_from,
    grid_graph,
    node_ids,
    path_graph,
    power_graph,
    sphere,
)


class TestDistances:
    def test_distance_on_path(self):
        graph = path_graph(6)
        assert distance(graph, 0, 5) == 5
        assert distance(graph, 2, 2) == 0

    def test_distances_from_truncated(self):
        graph = path_graph(10)
        dists = distances_from(graph, 0, radius=3)
        assert set(dists) == {0, 1, 2, 3}
        assert dists[3] == 3

    def test_distances_from_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            distances_from(path_graph(3), 0, radius=-1)

    def test_distance_disconnected_raises(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        with pytest.raises(nx.NetworkXNoPath):
            distance(graph, 0, 1)


class TestBalls:
    def test_ball_on_cycle(self):
        graph = cycle_graph(8)
        assert ball(graph, 0, 0) == {0}
        assert ball(graph, 0, 1) == {7, 0, 1}
        assert ball(graph, 0, 4) == set(range(8))

    def test_sphere_on_cycle(self):
        graph = cycle_graph(8)
        assert sphere(graph, 0, 2) == {2, 6}
        assert sphere(graph, 0, 0) == {0}

    def test_ball_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            ball(cycle_graph(4), 0, -1)
        with pytest.raises(ValueError):
            sphere(cycle_graph(4), 0, -2)

    def test_ball_subgraph_is_a_copy(self):
        graph = cycle_graph(6)
        sub = ball_subgraph(graph, 0, 1)
        sub.add_edge(0, 3)
        assert not graph.has_edge(0, 3)

    def test_ball_subgraph_edges(self):
        graph = grid_graph(3, 3)
        sub = ball_subgraph(graph, (1, 1), 1)
        assert set(sub.nodes()) == {(1, 1), (0, 1), (2, 1), (1, 0), (1, 2)}
        assert sub.number_of_edges() == 4

    @given(radius=st.integers(min_value=0, max_value=6), n=st.integers(min_value=3, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_ball_monotone_in_radius(self, radius, n):
        graph = cycle_graph(n)
        smaller = ball(graph, 0, radius)
        larger = ball(graph, 0, radius + 1)
        assert smaller <= larger


class TestBoundary:
    def test_boundary_of_interval_on_path(self):
        graph = path_graph(7)
        assert boundary(graph, {2, 3, 4}) == {1, 5}

    def test_boundary_of_everything_is_empty(self):
        graph = cycle_graph(5)
        assert boundary(graph, set(range(5))) == set()

    def test_boundary_grid_center(self):
        graph = grid_graph(3, 3)
        assert boundary(graph, {(1, 1)}) == {(0, 1), (2, 1), (1, 0), (1, 2)}


class TestPowerGraph:
    def test_square_of_path(self):
        graph = path_graph(5)
        squared = power_graph(graph, 2)
        assert squared.has_edge(0, 2)
        assert not squared.has_edge(0, 3)

    def test_power_one_is_same_graph(self):
        graph = cycle_graph(6)
        assert set(power_graph(graph, 1).edges()) == set(graph.edges())

    def test_power_at_least_diameter_is_complete(self):
        graph = path_graph(4)
        cubed = power_graph(graph, 3)
        assert cubed.number_of_edges() == 6

    def test_invalid_power_rejected(self):
        with pytest.raises(ValueError):
            power_graph(path_graph(3), 0)


class TestDiameterAndIds:
    def test_diameter(self):
        assert diameter(path_graph(6)) == 5
        assert diameter(cycle_graph(8)) == 4
        assert diameter(path_graph(1)) == 0

    def test_node_ids_are_unique_and_deterministic(self):
        graph = grid_graph(3, 2)
        ids_a = node_ids(graph)
        ids_b = node_ids(graph)
        assert ids_a == ids_b
        assert sorted(ids_a.values()) == list(range(6))

    def test_node_ids_mixed_labels(self):
        graph = nx.Graph()
        graph.add_nodes_from(["a", ("b", 1), 3])
        ids = node_ids(graph)
        assert sorted(ids.values()) == [0, 1, 2]
