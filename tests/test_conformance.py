"""The kernel x backend conformance matrix (one harness, every combination).

Consolidates the bit-identity assertions that used to be scattered across
``test_runtime.py`` (serial/batched/process sweeps), ``test_cluster.py``
(cluster sweeps) and ``test_sampling_*.py`` (per-kernel batched==serial
checks) into one parametrized matrix:

    every registered ChainKernel
      x  serial / batched / process / cluster (slow)
      x  a binary-alphabet instance and a 3-colour instance

with the kernel's own ``serial_run`` per spawned seed as the reference.
A new kernel registered via ``register_kernel`` -- or a new backend added
to the ``conformance_runtime`` fixture in ``conftest.py`` -- gets the
whole matrix with zero new test code.  Kernel-specific *statistics*
(e.g. JVV failure counts) stay next to their kernels in
``test_sampling_*.py``; this file owns the states.
"""

from __future__ import annotations

import pytest

from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.models import coloring_model, hardcore_model
from repro.sampling import registered_kernels

KERNELS = sorted(registered_kernels())

#: Two shapes: a pinned binary-alphabet model and a pinned 3-colour model
#: (alphabet size > 2 exercises the code-matrix gathers differently).
CONFORMANCE_INSTANCES = [
    (
        "hardcore-cycle",
        SamplingInstance(hardcore_model(cycle_graph(9), fugacity=1.3), {0: 1}),
    ),
    (
        "coloring-path",
        SamplingInstance(coloring_model(path_graph(6), num_colors=3), {0: 2}),
    ),
]

#: Units of dynamics per chain: enough steps that every free node moves.
CONFORMANCE_COUNT = 14
CONFORMANCE_SEED = 3


def test_the_registry_holds_the_expected_builtins():
    assert {"glauber", "luby-glauber", "jvv", "sequential"} <= set(KERNELS)


@pytest.mark.parametrize("kernel_name", KERNELS)
def test_every_kernel_is_bit_identical_on_every_backend(
    conformance_runtime, serial_reference, kernel_name
):
    """run_chains on any backend == the serial reference, per chain."""
    for label, instance in CONFORMANCE_INSTANCES:
        reference = serial_reference(
            kernel_name, instance, CONFORMANCE_COUNT, seed=CONFORMANCE_SEED
        )
        observed = conformance_runtime.run_chains(
            kernel_name, instance, CONFORMANCE_COUNT, seed=CONFORMANCE_SEED
        )
        assert observed == reference, (
            f"kernel {kernel_name!r} diverges from the serial reference on "
            f"the {conformance_runtime.backend!r} backend ({label})"
        )


@pytest.mark.parametrize("kernel_name", KERNELS)
def test_explicit_seed_lists_conform_too(
    conformance_runtime, conformance_chains, kernel_name
):
    """The seeds= path (the serving coalescer's transport) conforms as
    well: integer seeds, not just spawned SeedSequences."""
    _, instance = CONFORMANCE_INSTANCES[0]
    from repro.sampling import get_kernel

    kernel = get_kernel(kernel_name)
    seeds = list(range(10, 10 + conformance_chains))
    reference = [
        kernel.serial_run(instance, CONFORMANCE_COUNT, seed=seed) for seed in seeds
    ]
    observed = conformance_runtime.run_chains(
        kernel_name, instance, CONFORMANCE_COUNT, seeds=seeds
    )
    assert observed == reference, (
        f"kernel {kernel_name!r} diverges under explicit seeds on the "
        f"{conformance_runtime.backend!r} backend"
    )
