"""The kernel x backend conformance matrix (one harness, every combination).

Consolidates the bit-identity assertions that used to be scattered across
``test_runtime.py`` (serial/batched/process sweeps), ``test_cluster.py``
(cluster sweeps) and ``test_sampling_*.py`` (per-kernel batched==serial
checks) into one parametrized matrix:

    every registered ChainKernel
      x  serial / batched / process / process-shm (slow) / cluster (slow)
      x  a binary-alphabet instance and a 3-colour instance

with the kernel's own ``serial_run`` per spawned seed as the reference,
plus a PackedBatch row per kernel: many instances packed into one padded
code matrix (fused and mixed-alphabet-fallback shapes alike) stay
bit-identical per group to their solo runs.
A new kernel registered via ``register_kernel`` -- or a new backend added
to the ``conformance_runtime`` fixture in ``conftest.py`` -- gets the
whole matrix with zero new test code.  Kernel-specific *statistics*
(e.g. JVV failure counts) stay next to their kernels in
``test_sampling_*.py``; this file owns the states.
"""

from __future__ import annotations

import pytest

from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.models import coloring_model, hardcore_model
from repro.sampling import registered_kernels

KERNELS = sorted(registered_kernels())

#: Two shapes: a pinned binary-alphabet model and a pinned 3-colour model
#: (alphabet size > 2 exercises the code-matrix gathers differently).
CONFORMANCE_INSTANCES = [
    (
        "hardcore-cycle",
        SamplingInstance(hardcore_model(cycle_graph(9), fugacity=1.3), {0: 1}),
    ),
    (
        "coloring-path",
        SamplingInstance(coloring_model(path_graph(6), num_colors=3), {0: 2}),
    ),
]

#: Units of dynamics per chain: enough steps that every free node moves.
CONFORMANCE_COUNT = 14
CONFORMANCE_SEED = 3


def test_the_registry_holds_the_expected_builtins():
    assert {"glauber", "luby-glauber", "jvv", "sequential"} <= set(KERNELS)


@pytest.mark.parametrize("kernel_name", KERNELS)
def test_every_kernel_is_bit_identical_on_every_backend(
    conformance_runtime, serial_reference, kernel_name
):
    """run_chains on any backend == the serial reference, per chain."""
    for label, instance in CONFORMANCE_INSTANCES:
        reference = serial_reference(
            kernel_name, instance, CONFORMANCE_COUNT, seed=CONFORMANCE_SEED
        )
        observed = conformance_runtime.run_chains(
            kernel_name, instance, CONFORMANCE_COUNT, seed=CONFORMANCE_SEED
        )
        assert observed == reference, (
            f"kernel {kernel_name!r} diverges from the serial reference on "
            f"the {conformance_runtime.backend!r} backend ({label})"
        )


@pytest.mark.parametrize("kernel_name", KERNELS)
def test_packed_multi_instance_matches_solo(kernel_name, conformance_chains):
    """The PackedBatch row: many instances in one padded code matrix,
    each group bit-identical per chain to its solo run.

    Two pack shapes: the mixed-alphabet pair (q=2 hardcore + q=3
    coloring) exercises the groupwise fallback of kernels whose fused
    step cannot span alphabets, and a same-alphabet hardcore pair
    exercises the fused mask-aware step where the kernel defines one.
    """
    from repro.runtime import Runtime, chain_seed_sequences

    runtime = Runtime()
    packs = [
        ("mixed-alphabet", [instance for _, instance in CONFORMANCE_INSTANCES]),
        (
            "fused-same-alphabet",
            [
                CONFORMANCE_INSTANCES[0][1],
                SamplingInstance(hardcore_model(path_graph(7), fugacity=1.1)),
            ],
        ),
    ]
    for label, instances in packs:
        seeds = [
            chain_seed_sequences(CONFORMANCE_SEED + group, conformance_chains)
            for group in range(len(instances))
        ]
        packed = runtime.run_packed(
            kernel_name, list(zip(instances, seeds)), CONFORMANCE_COUNT
        )
        for group, instance in enumerate(instances):
            solo = runtime.run_chains(
                kernel_name, instance, CONFORMANCE_COUNT, seeds=seeds[group]
            )
            assert packed[group] == solo, (
                f"kernel {kernel_name!r} group {group} diverges from its "
                f"solo run inside the {label} pack"
            )


@pytest.mark.parametrize("kernel_name", KERNELS)
def test_explicit_seed_lists_conform_too(
    conformance_runtime, conformance_chains, kernel_name
):
    """The seeds= path (the serving coalescer's transport) conforms as
    well: integer seeds, not just spawned SeedSequences."""
    _, instance = CONFORMANCE_INSTANCES[0]
    from repro.sampling import get_kernel

    kernel = get_kernel(kernel_name)
    seeds = list(range(10, 10 + conformance_chains))
    reference = [
        kernel.serial_run(instance, CONFORMANCE_COUNT, seed=seed) for seed in seeds
    ]
    observed = conformance_runtime.run_chains(
        kernel_name, instance, CONFORMANCE_COUNT, seeds=seeds
    )
    assert observed == reference, (
        f"kernel {kernel_name!r} diverges under explicit seeds on the "
        f"{conformance_runtime.backend!r} backend"
    )
