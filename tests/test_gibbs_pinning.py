"""Unit and property tests for pinnings (partial configurations)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gibbs import Pinning

small_assignments = st.dictionaries(
    keys=st.integers(min_value=0, max_value=8),
    values=st.integers(min_value=0, max_value=3),
    max_size=6,
)


class TestPinningBasics:
    def test_empty(self):
        pinning = Pinning.empty()
        assert len(pinning) == 0
        assert pinning.domain == frozenset()

    def test_mapping_protocol(self):
        pinning = Pinning({1: "a", 2: "b"})
        assert pinning[1] == "a"
        assert 2 in pinning
        assert set(pinning) == {1, 2}
        assert dict(pinning) == {1: "a", 2: "b"}

    def test_extend_new_node(self):
        pinning = Pinning({0: 1}).extend(1, 0)
        assert dict(pinning) == {0: 1, 1: 0}

    def test_extend_conflicting_value_rejected(self):
        with pytest.raises(ValueError):
            Pinning({0: 1}).extend(0, 0)

    def test_extend_same_value_is_noop(self):
        pinning = Pinning({0: 1}).extend(0, 1)
        assert dict(pinning) == {0: 1}

    def test_union_conflict_rejected(self):
        with pytest.raises(ValueError):
            Pinning({0: 1}).union({0: 2})

    def test_restrict_and_drop(self):
        pinning = Pinning({0: 1, 1: 2, 2: 3})
        assert dict(pinning.restrict({0, 2})) == {0: 1, 2: 3}
        assert dict(pinning.drop({0, 2})) == {1: 2}

    def test_difference_domain(self):
        first = Pinning({0: 1, 1: 1, 2: 0})
        second = {0: 1, 1: 0, 3: 1}
        assert first.difference_domain(second) == frozenset({1})

    def test_equality_and_hash(self):
        assert Pinning({0: 1}) == Pinning({0: 1})
        assert Pinning({0: 1}) == {0: 1}
        assert hash(Pinning({0: 1})) == hash(Pinning({0: 1}))


class TestPinningProperties:
    @given(first=small_assignments, second=small_assignments)
    @settings(max_examples=60, deadline=None)
    def test_union_is_superset_when_compatible(self, first, second):
        compatible = all(first[k] == second[k] for k in set(first) & set(second))
        if not compatible:
            with pytest.raises(ValueError):
                Pinning(first).union(second)
            return
        union = Pinning(first).union(second)
        assert set(union) == set(first) | set(second)
        assert union.agrees_with(first)
        assert union.agrees_with(second)

    @given(assignment=small_assignments, keep=st.sets(st.integers(0, 8), max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_restrict_drop_partition(self, assignment, keep):
        pinning = Pinning(assignment)
        restricted = pinning.restrict(keep)
        dropped = pinning.drop(keep)
        merged = dict(restricted)
        merged.update(dict(dropped))
        assert merged == assignment

    @given(assignment=small_assignments)
    @settings(max_examples=60, deadline=None)
    def test_pinning_is_immutable_copy(self, assignment):
        pinning = Pinning(assignment)
        as_dict = pinning.as_dict()
        as_dict[99] = 7
        assert 99 not in pinning
