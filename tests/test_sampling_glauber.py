"""Tests for the Glauber-dynamics baselines."""

import math

import pytest

from repro.analysis import empirical_distribution, total_variation
from repro.analysis.distances import configuration_key
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph, star_graph
from repro.models import coloring_model, hardcore_model
from repro.sampling import (
    enumerate_target_distribution,
    glauber_sample,
    greedy_feasible_configuration,
    luby_glauber_sample,
)
from repro.sampling.glauber import local_conditional


class TestGreedyConfiguration:
    def test_feasible_and_respects_pinning(self):
        distribution = coloring_model(cycle_graph(6), num_colors=3)
        instance = SamplingInstance(distribution, {0: 1, 3: 2})
        configuration = greedy_feasible_configuration(instance)
        assert distribution.weight(configuration) > 0
        assert configuration[0] == 1 and configuration[3] == 2

    def test_raises_when_not_locally_admissible(self):
        # 2-coloring a triangle is infeasible; the greedy construction must
        # detect the dead end rather than return an invalid configuration.
        distribution = coloring_model(cycle_graph(3), num_colors=2)
        instance = SamplingInstance(distribution)
        with pytest.raises(RuntimeError):
            greedy_feasible_configuration(instance)


class TestLocalConditional:
    def test_hardcore_conditional(self):
        distribution = hardcore_model(star_graph(3), fugacity=2.0)
        instance = SamplingInstance(distribution)
        configuration = {0: 0, 1: 0, 2: 0, 3: 0}
        conditional = local_conditional(instance, configuration, 0)
        assert conditional[1] == pytest.approx(2.0 / 3.0)
        configuration[1] = 1
        blocked = local_conditional(instance, configuration, 0)
        assert blocked[1] == pytest.approx(0.0)

    def test_matches_exact_conditional(self):
        distribution = hardcore_model(cycle_graph(5), fugacity=1.3)
        instance = SamplingInstance(distribution)
        configuration = greedy_feasible_configuration(instance)
        node = 2
        rest = {u: v for u, v in configuration.items() if u != node}
        expected = instance.distribution.marginal(node, rest)
        computed = local_conditional(instance, configuration, node)
        for value in distribution.alphabet:
            assert computed[value] == pytest.approx(expected[value])


class TestGlauberChains:
    def test_states_stay_feasible(self):
        distribution = hardcore_model(cycle_graph(7), fugacity=1.0)
        instance = SamplingInstance(distribution, {0: 1})
        state = glauber_sample(instance, steps=200, seed=1)
        assert distribution.weight(state) > 0
        assert state[0] == 1
        parallel = luby_glauber_sample(instance, rounds=50, seed=1)
        assert distribution.weight(parallel) > 0
        assert parallel[0] == 1

    def test_zero_steps_returns_initial(self):
        distribution = hardcore_model(path_graph(4), fugacity=1.0)
        instance = SamplingInstance(distribution)
        initial = greedy_feasible_configuration(instance)
        assert glauber_sample(instance, steps=0, seed=0, initial=initial) == initial

    def test_negative_steps_rejected(self):
        distribution = hardcore_model(path_graph(3), fugacity=1.0)
        instance = SamplingInstance(distribution)
        with pytest.raises(ValueError):
            glauber_sample(instance, steps=-1)
        with pytest.raises(ValueError):
            luby_glauber_sample(instance, rounds=-1)

    def test_glauber_converges_to_target(self):
        # Long single-site chains on a tiny instance approach the target
        # distribution (the chain is ergodic for this locally admissible model).
        distribution = hardcore_model(path_graph(4), fugacity=1.0)
        instance = SamplingInstance(distribution)
        truth = enumerate_target_distribution(instance)
        samples = [
            configuration_key(glauber_sample(instance, steps=60, seed=seed))
            for seed in range(500)
        ]
        empirical = empirical_distribution(samples)
        noise = 3.0 * math.sqrt(len(truth) / (4.0 * 500)) + 0.03
        assert total_variation(empirical, truth) < noise

    def test_luby_glauber_converges_to_target(self):
        distribution = hardcore_model(cycle_graph(5), fugacity=1.0)
        instance = SamplingInstance(distribution)
        truth = enumerate_target_distribution(instance)
        samples = [
            configuration_key(luby_glauber_sample(instance, rounds=40, seed=seed))
            for seed in range(500)
        ]
        empirical = empirical_distribution(samples)
        noise = 3.0 * math.sqrt(len(truth) / (4.0 * 500)) + 0.03
        assert total_variation(empirical, truth) < noise

    def test_fully_pinned_instance_is_constant(self):
        distribution = hardcore_model(path_graph(3), fugacity=1.0)
        pinning = {0: 1, 1: 0, 2: 1}
        instance = SamplingInstance(distribution, pinning)
        assert glauber_sample(instance, steps=10, seed=0) == pinning
        assert luby_glauber_sample(instance, rounds=10, seed=0) == pinning
