"""Randomized equivalence suite: compiled engine vs reference dict engine.

The array-backed compiled engine (:mod:`repro.engine`) and the reference
dict-of-tuples eliminator (:mod:`repro.gibbs.elimination`) are independent
implementations of the same mathematics.  This suite drives both through the
public APIs -- partition functions, marginals, ball-restricted marginals and
Glauber conditionals -- across hardcore, Ising/two-spin, matching and
coloring instances on randomized graphs with randomized pinnings, and
requires agreement to 1e-9.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, grid_graph, path_graph, random_tree, star_graph
from repro.models import (
    coloring_model,
    hardcore_model,
    ising_model,
    matching_model,
    two_spin_model,
)
from repro.sampling.glauber import (
    glauber_sample,
    greedy_feasible_configuration,
    local_conditional,
    luby_glauber_sample,
)

TOLERANCE = 1e-9


def _model_instances():
    """(label, distribution) pairs covering all four model families."""
    rng = np.random.default_rng(20260726)
    instances = []
    for trial in range(3):
        graph = random_tree(9, seed=trial)
        fugacity = float(rng.uniform(0.3, 3.0))
        instances.append((f"hardcore-tree{trial}", hardcore_model(graph, fugacity)))
    instances.append(("hardcore-grid", hardcore_model(grid_graph(3, 4), 1.2)))
    instances.append(
        ("ising-cycle", ising_model(cycle_graph(7), interaction=0.4, external_field=0.2))
    )
    instances.append(
        ("two-spin-path", two_spin_model(path_graph(7), beta=0.5, gamma=1.6, field=1.1))
    )
    instances.append(("matching-cycle", matching_model(cycle_graph(6), edge_weight=1.4)))
    instances.append(("matching-star", matching_model(star_graph(4), edge_weight=0.7)))
    instances.append(("coloring-cycle", coloring_model(cycle_graph(6), num_colors=3)))
    instances.append(("coloring-tree", coloring_model(random_tree(8, seed=5), num_colors=4)))
    return instances


MODEL_INSTANCES = _model_instances()
MODEL_IDS = [label for label, _ in MODEL_INSTANCES]


def _random_feasible_pinning(distribution, rng, max_pins=3):
    """A random pinning kept only if feasible (checked with the dict engine)."""
    nodes = distribution.nodes
    count = int(rng.integers(0, max_pins + 1))
    if count == 0:
        return {}
    chosen = rng.choice(len(nodes), size=min(count, len(nodes)), replace=False)
    pinning = {
        nodes[int(i)]: distribution.alphabet[int(rng.integers(0, distribution.alphabet_size))]
        for i in chosen
    }
    if distribution.partition_function(pinning, engine="dict") > 0.0:
        return pinning
    return {}


@pytest.mark.parametrize(("label", "distribution"), MODEL_INSTANCES, ids=MODEL_IDS)
class TestEngineEquivalence:
    def test_partition_functions_agree(self, label, distribution):
        rng = np.random.default_rng(hash(label) % (2**32))
        for _ in range(4):
            pinning = _random_feasible_pinning(distribution, rng)
            z_compiled = distribution.partition_function(pinning, engine="compiled")
            z_dict = distribution.partition_function(pinning, engine="dict")
            assert z_compiled == pytest.approx(z_dict, rel=TOLERANCE, abs=1e-12)

    def test_marginals_agree(self, label, distribution):
        rng = np.random.default_rng((hash(label) + 1) % (2**32))
        nodes = distribution.nodes
        for _ in range(3):
            pinning = _random_feasible_pinning(distribution, rng)
            for node in nodes[:4]:
                if node in pinning:
                    continue
                compiled = distribution.marginal(node, pinning, engine="compiled")
                reference = distribution.marginal(node, pinning, engine="dict")
                for value in distribution.alphabet:
                    assert compiled[value] == pytest.approx(
                        reference[value], rel=TOLERANCE, abs=TOLERANCE
                    )

    def test_joint_marginals_agree(self, label, distribution):
        # The compiled engine computes the whole joint from one contraction
        # schedule with multiple kept axes; the dict engine loops value
        # tuples over the partition function.  They must agree entrywise.
        rng = np.random.default_rng((hash(label) + 3) % (2**32))
        nodes = distribution.nodes
        for size in (1, 2, 3):
            if len(nodes) < size:
                continue
            pinning = _random_feasible_pinning(distribution, rng)
            chosen = [nodes[int(i)] for i in rng.choice(len(nodes), size=size, replace=False)]
            compiled = distribution.joint_marginal(chosen, pinning, engine="compiled")
            reference = distribution.joint_marginal(chosen, pinning, engine="dict")
            assert set(compiled) == set(reference)
            for key, probability in reference.items():
                assert compiled[key] == pytest.approx(
                    probability, rel=TOLERANCE, abs=TOLERANCE
                )
            assert sum(compiled.values()) == pytest.approx(1.0, abs=1e-9)

    def test_joint_marginal_with_pinned_query_nodes(self, label, distribution):
        nodes = distribution.nodes
        pinned_value = distribution.alphabet[0]
        pinning = {nodes[0]: pinned_value}
        if distribution.partition_function(pinning, engine="dict") <= 0.0:
            pinning = {nodes[0]: distribution.alphabet[-1]}
        compiled = distribution.joint_marginal((nodes[0], nodes[2]), pinning, engine="compiled")
        reference = distribution.joint_marginal((nodes[0], nodes[2]), pinning, engine="dict")
        assert set(compiled) == set(reference)
        for key, probability in reference.items():
            assert compiled[key] == pytest.approx(probability, rel=TOLERANCE, abs=TOLERANCE)

    def test_ball_restricted_marginals_agree(self, label, distribution):
        rng = np.random.default_rng((hash(label) + 2) % (2**32))
        nodes = distribution.nodes
        for radius in (0, 1, 2):
            pinning = _random_feasible_pinning(distribution, rng)
            for center in nodes[:3]:
                if center in pinning:
                    continue
                compiled = distribution.ball_marginal(
                    center, radius, pinning, center, engine="compiled"
                )
                reference = distribution.ball_marginal(
                    center, radius, pinning, center, engine="dict"
                )
                for value in distribution.alphabet:
                    assert compiled[value] == pytest.approx(
                        reference[value], rel=TOLERANCE, abs=TOLERANCE
                    )

    def test_local_conditionals_agree(self, label, distribution):
        instance = SamplingInstance(distribution)
        configuration = greedy_feasible_configuration(instance, engine="dict")
        compiled_start = greedy_feasible_configuration(instance, engine="compiled")
        assert compiled_start == configuration
        for node in distribution.nodes[:5]:
            compiled = local_conditional(instance, configuration, node, engine="compiled")
            reference = local_conditional(instance, configuration, node, engine="dict")
            for value in distribution.alphabet:
                assert compiled[value] == pytest.approx(
                    reference[value], rel=TOLERANCE, abs=TOLERANCE
                )


class TestPinnedSubInstances:
    """Conditioned (self-reduced) instances exercise the pinning signatures."""

    def test_conditioned_marginals_agree(self):
        distribution = hardcore_model(cycle_graph(8), fugacity=1.5)
        rng = np.random.default_rng(7)
        instance = SamplingInstance(distribution, {0: 1})
        for _ in range(5):
            extra_node = int(rng.integers(1, 8))
            extra = {extra_node: 0}
            conditioned = instance.conditioned(extra)
            for node in conditioned.free_nodes:
                compiled = distribution.marginal(node, conditioned.pinning, engine="compiled")
                reference = distribution.marginal(node, conditioned.pinning, engine="dict")
                for value in distribution.alphabet:
                    assert compiled[value] == pytest.approx(
                        reference[value], rel=TOLERANCE, abs=TOLERANCE
                    )

    def test_infeasible_pinning_behaviour_matches(self):
        distribution = hardcore_model(path_graph(4), fugacity=1.0)
        infeasible = {0: 1, 1: 1}
        assert distribution.partition_function(infeasible, engine="compiled") == 0.0
        assert distribution.partition_function(infeasible, engine="dict") == 0.0
        with pytest.raises(ValueError):
            distribution.marginal(3, infeasible, engine="compiled")
        with pytest.raises(ValueError):
            distribution.marginal(3, infeasible, engine="dict")

    def test_unknown_engine_rejected(self):
        distribution = hardcore_model(path_graph(3), fugacity=1.0)
        with pytest.raises(ValueError):
            distribution.partition_function({}, engine="quantum")


class TestChainEquivalence:
    """The compiled chains target the same distribution as the reference ones."""

    @pytest.mark.parametrize("engine", ["compiled", "dict"])
    def test_glauber_stays_feasible_and_respects_pinning(self, engine):
        distribution = coloring_model(cycle_graph(6), num_colors=3)
        instance = SamplingInstance(distribution, {0: 1})
        state = glauber_sample(instance, steps=120, seed=3, engine=engine)
        assert distribution.weight(state) > 0.0
        assert state[0] == 1
        parallel = luby_glauber_sample(instance, rounds=40, seed=3, engine=engine)
        assert distribution.weight(parallel) > 0.0
        assert parallel[0] == 1

    def test_compiled_glauber_matches_target_distribution(self):
        from repro.analysis import empirical_distribution, total_variation
        from repro.analysis.distances import configuration_key
        from repro.sampling import enumerate_target_distribution

        distribution = hardcore_model(path_graph(4), fugacity=1.0)
        instance = SamplingInstance(distribution)
        truth = enumerate_target_distribution(instance)
        samples = [
            configuration_key(glauber_sample(instance, steps=60, seed=seed, engine="compiled"))
            for seed in range(400)
        ]
        empirical = empirical_distribution(samples)
        noise = 3.0 * (len(truth) / (4.0 * 400)) ** 0.5 + 0.03
        assert total_variation(empirical, truth) < noise
