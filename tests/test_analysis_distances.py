"""Unit and property tests for the distance / error measures."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    empirical_distribution,
    multiplicative_error,
    normalize,
    total_variation,
)
from repro.analysis.distances import (
    configuration_key,
    expectation,
    hellinger_distance,
    marginal_from_joint,
    sample_from,
)

distributions = st.lists(
    st.floats(min_value=0.01, max_value=10.0), min_size=2, max_size=6
).map(lambda weights: normalize({i: w for i, w in enumerate(weights)}))


class TestNormalize:
    def test_normalises(self):
        assert normalize({"a": 2.0, "b": 6.0}) == {"a": 0.25, "b": 0.75}

    def test_rejects_zero_and_negative_mass(self):
        with pytest.raises(ValueError):
            normalize({"a": 0.0})
        with pytest.raises(ValueError):
            normalize({"a": 1.0, "b": -0.5})


class TestTotalVariation:
    def test_simple_values(self):
        mu = {0: 0.5, 1: 0.5}
        nu = {0: 0.75, 1: 0.25}
        assert total_variation(mu, nu) == pytest.approx(0.25)

    def test_disjoint_supports(self):
        assert total_variation({0: 1.0}, {1: 1.0}) == pytest.approx(1.0)

    @given(mu=distributions, nu=distributions, rho=distributions)
    @settings(max_examples=60, deadline=None)
    def test_metric_properties(self, mu, nu, rho):
        assert total_variation(mu, mu) == pytest.approx(0.0)
        assert total_variation(mu, nu) == pytest.approx(total_variation(nu, mu))
        assert 0 <= total_variation(mu, nu) <= 1 + 1e-12
        assert total_variation(mu, rho) <= total_variation(mu, nu) + total_variation(nu, rho) + 1e-12


class TestMultiplicativeError:
    def test_matches_log_ratio(self):
        mu = {0: 0.5, 1: 0.5}
        nu = {0: 0.25, 1: 0.75}
        assert multiplicative_error(mu, nu) == pytest.approx(math.log(2.0))

    def test_zero_zero_convention(self):
        mu = {0: 1.0, 1: 0.0}
        nu = {0: 1.0, 1: 0.0}
        assert multiplicative_error(mu, nu) == 0.0

    def test_one_sided_zero_is_infinite(self):
        assert math.isinf(multiplicative_error({0: 1.0, 1: 0.0}, {0: 0.5, 1: 0.5}))

    @given(mu=distributions, nu=distributions)
    @settings(max_examples=50, deadline=None)
    def test_multiplicative_error_dominates_tv(self, mu, nu):
        if set(mu) != set(nu):
            return
        error = multiplicative_error(mu, nu)
        # Pinsker-style comparison: small multiplicative error forces small TV.
        assert total_variation(mu, nu) <= (math.exp(error) - 1.0) / 2.0 + 1e-9


class TestEmpiricalAndSampling:
    def test_empirical_distribution_counts(self):
        assert empirical_distribution(["a", "a", "b", "a"]) == {"a": 0.75, "b": 0.25}
        with pytest.raises(ValueError):
            empirical_distribution([])

    def test_configuration_key_is_order_insensitive(self):
        assert configuration_key({1: "x", 0: "y"}) == configuration_key({0: "y", 1: "x"})

    def test_marginal_from_joint(self):
        joint = {
            configuration_key({0: 0, 1: 1}): 0.3,
            configuration_key({0: 1, 1: 1}): 0.7,
        }
        assert marginal_from_joint(joint, 0) == {0: 0.3, 1: 0.7}
        assert marginal_from_joint(joint, 1) == {1: 1.0}

    def test_expectation(self):
        distribution = {0: 0.25, 1: 0.75}
        assert expectation(distribution, {0: 0.0, 1: 4.0}) == pytest.approx(3.0)

    def test_hellinger_bounds(self):
        assert hellinger_distance({0: 1.0}, {0: 1.0}) == pytest.approx(0.0)
        assert hellinger_distance({0: 1.0}, {1: 1.0}) == pytest.approx(1.0)

    def test_sample_from_is_reproducible_and_supported(self):
        distribution = {"a": 0.2, "b": 0.5, "c": 0.3}
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
        draws_a = [sample_from(distribution, rng_a) for _ in range(20)]
        draws_b = [sample_from(distribution, rng_b) for _ in range(20)]
        assert draws_a == draws_b
        assert set(draws_a) <= set(distribution)

    def test_sample_from_follows_distribution(self):
        distribution = {0: 0.8, 1: 0.2}
        rng = np.random.default_rng(0)
        draws = [sample_from(distribution, rng) for _ in range(3000)]
        assert abs(draws.count(0) / 3000 - 0.8) < 0.05

    def test_sample_from_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            sample_from({0: 0.0}, np.random.default_rng(0))
