"""Unit tests for the SLOCAL-model driver and its locality enforcement."""

import pytest

from repro.graphs import cycle_graph, path_graph
from repro.localmodel import Network, SLocalAlgorithm, run_slocal_algorithm


class GreedyColoringAlgorithm(SLocalAlgorithm):
    """Sequential greedy (Delta+1)-coloring: the canonical SLOCAL(1) example."""

    passes = 1

    def locality(self, network):
        return 1

    def process(self, pass_index, node, access, rng, network):
        taken = set()
        for other in access.visible_nodes:
            if other == node:
                continue
            state = access.read(other)
            if "output" in state and network.graph.has_edge(node, other):
                taken.add(state["output"])
        color = 0
        while color in taken:
            color += 1
        access.write(node, "output", color)


class LocalityViolatingAlgorithm(SLocalAlgorithm):
    """Tries to read a node outside its declared locality."""

    def locality(self, network):
        return 1

    def process(self, pass_index, node, access, rng, network):
        far = max(network.nodes, key=lambda other: network.ids[other])
        if far not in access.visible_nodes:
            access.read(far)
        access.write(node, "output", 0)


class TwoPassCountingAlgorithm(SLocalAlgorithm):
    """First pass marks nodes, second pass counts marked neighbours."""

    passes = 2

    def locality(self, network):
        return 1

    def process(self, pass_index, node, access, rng, network):
        if pass_index == 0:
            access.write(node, "marked", int(rng.integers(0, 2)))
            return
        count = 0
        for other in access.visible_nodes:
            if other != node and access.read(other).get("marked"):
                count += 1
        access.write(node, "output", count)


class TestRunSLocalAlgorithm:
    def test_greedy_coloring_is_proper(self):
        network = Network(cycle_graph(7))
        result = run_slocal_algorithm(GreedyColoringAlgorithm(), network)
        colors = result.outputs
        for u, v in network.graph.edges():
            assert colors[u] != colors[v]
        assert max(colors.values()) <= 2
        assert result.success

    def test_greedy_coloring_any_ordering(self):
        network = Network(cycle_graph(6))
        ordering = [3, 0, 5, 2, 4, 1]
        result = run_slocal_algorithm(GreedyColoringAlgorithm(), network, ordering)
        for u, v in network.graph.edges():
            assert result.outputs[u] != result.outputs[v]
        assert result.ordering == ordering

    def test_invalid_ordering_rejected(self):
        network = Network(path_graph(4))
        with pytest.raises(ValueError):
            run_slocal_algorithm(GreedyColoringAlgorithm(), network, ordering=[0, 1, 2])

    def test_locality_violation_raises(self):
        network = Network(path_graph(6))
        with pytest.raises(PermissionError):
            run_slocal_algorithm(LocalityViolatingAlgorithm(), network)

    def test_multi_pass_algorithm(self):
        network = Network(cycle_graph(5), seed=2)
        result = run_slocal_algorithm(TwoPassCountingAlgorithm(), network)
        marked = {node: result.states[node]["marked"] for node in network.nodes}
        for node in network.nodes:
            expected = sum(marked[neighbor] for neighbor in network.graph.neighbors(node))
            assert result.outputs[node] == expected

    def test_states_are_returned(self):
        network = Network(path_graph(3))
        result = run_slocal_algorithm(GreedyColoringAlgorithm(), network)
        assert set(result.states) == set(network.nodes)
        assert result.locality == 1
