"""Tests for the SSM-based (Theorem 5.1 converse) inference algorithms."""

import pytest

from repro.analysis import total_variation
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, grid_graph, path_graph
from repro.inference import BoundaryPaddedInference, TruncatedBallInference
from repro.inference.ssm_inference import padded_ball_marginal
from repro.models import coloring_model, hardcore_model


class TestPaddedBallMarginal:
    def test_full_radius_equals_exact(self, pinned_hardcore_instance):
        instance = pinned_hardcore_instance
        for node in instance.free_nodes:
            estimate = padded_ball_marginal(instance, node, instance.size)
            truth = instance.target_marginal(node)
            for value, probability in truth.items():
                assert estimate[value] == pytest.approx(probability)

    def test_error_decreases_with_radius(self):
        distribution = hardcore_model(cycle_graph(12), fugacity=1.0)
        instance = SamplingInstance(distribution, {0: 1})
        node = 6
        truth = instance.target_marginal(node)
        errors = []
        for radius in (0, 2, 4, 6):
            estimate = padded_ball_marginal(instance, node, radius)
            errors.append(total_variation(estimate, truth))
        assert errors[-1] <= errors[0] + 1e-12
        assert errors[-1] < 0.02

    def test_pinned_node_is_point_mass(self, pinned_hardcore_instance):
        estimate = padded_ball_marginal(pinned_hardcore_instance, 0, 1)
        assert estimate[1] == pytest.approx(1.0)

    def test_padding_is_feasible_for_colorings(self, coloring_instance):
        # The greedy boundary extension must find proper extensions even with
        # hard constraints (q = Delta + 1 colorings are locally admissible).
        for node in coloring_instance.free_nodes:
            estimate = padded_ball_marginal(coloring_instance, node, 1)
            assert sum(estimate.values()) == pytest.approx(1.0)


class TestTruncatedBallInference:
    def test_radius_zero_uses_only_the_vertex_factor(self):
        distribution = hardcore_model(cycle_graph(8), fugacity=1.0)
        instance = SamplingInstance(distribution)
        engine = TruncatedBallInference(radius=0)
        estimate = engine.marginal(instance, 0, 0.1)
        # With an empty boundary shell of radius l=1 around the single node
        # the computation sees node 0 plus its padded neighbours pinned
        # empty, so the estimate is lambda/(1+lambda).
        assert estimate[1] == pytest.approx(0.5, abs=0.2)

    def test_locality_accounts_for_factor_diameter(self):
        distribution = hardcore_model(cycle_graph(8), fugacity=1.0)
        instance = SamplingInstance(distribution)
        engine = TruncatedBallInference(radius=3)
        assert engine.locality(instance, 0.1) == 3 + 2

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            TruncatedBallInference(radius=-1)

    def test_accuracy_improves_with_radius_on_grid(self):
        distribution = hardcore_model(grid_graph(4, 4), fugacity=0.6)
        instance = SamplingInstance(distribution, {(0, 0): 1})
        node = (2, 2)
        truth = instance.target_marginal(node)
        coarse = total_variation(TruncatedBallInference(1).marginal(instance, node, 0.1), truth)
        fine = total_variation(TruncatedBallInference(3).marginal(instance, node, 0.1), truth)
        assert fine <= coarse + 1e-9


class TestBoundaryPaddedInference:
    def test_meets_requested_error_hardcore(self):
        distribution = hardcore_model(cycle_graph(10), fugacity=0.9)
        instance = SamplingInstance(distribution, {0: 1})
        engine = BoundaryPaddedInference(decay_rate=0.5)
        for error in (0.2, 0.02):
            for node in (3, 5, 7):
                estimate = engine.marginal(instance, node, error)
                truth = instance.target_marginal(node)
                assert total_variation(estimate, truth) <= error

    def test_locality_respects_max_radius(self):
        distribution = hardcore_model(cycle_graph(10), fugacity=0.9)
        instance = SamplingInstance(distribution)
        capped = BoundaryPaddedInference(decay_rate=0.9, max_radius=3)
        assert capped.locality(instance, 1e-6) <= 3 + 2

    def test_rate_read_from_metadata(self):
        from repro.models import matching_model

        distribution = matching_model(path_graph(6), edge_weight=1.0)
        instance = SamplingInstance(distribution)
        engine = BoundaryPaddedInference()
        assert engine._rate(instance) == pytest.approx(
            distribution.metadata["ssm_decay_rate"]
        )

    def test_invalid_decay_rate(self):
        with pytest.raises(ValueError):
            BoundaryPaddedInference(decay_rate=1.2)
