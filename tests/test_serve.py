"""End-to-end tests of the sampling-as-a-service layer (repro.serve).

Every test drives the real asyncio server over a real localhost socket
through the bundled client (``asyncio.run`` inside plain test functions
-- no pytest plugin dependency).  The load-bearing guarantees:

* a served sample is *bit-identical* to the same ``Runtime.run_chains``
  call made directly with the same seed -- solo and coalesced alike;
* N concurrent requests coalesce into at most ``ceil(N / max_batch)``
  ``run_chains`` batches (asserted via the obs counters AND the
  batch ids the responses carry);
* operational behaviour: deadline -> 504 with the queued work cancelled,
  queue cap -> 429, graceful drain completes in-flight requests,
  registry errors -> 404/400.
"""

import asyncio
import json
import math

import pytest

from repro import obs
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.inference.ssm_inference import padded_ball_marginal
from repro.models import hardcore_model
from repro.runtime import Runtime
from repro.serve import ModelRegistry, SamplingServer, encode_state
from repro.serve.client import (
    request_json,
    request_ndjson,
    sample_payload,
)


def _registry():
    instance = SamplingInstance(
        hardcore_model(cycle_graph(10), fugacity=1.2), {0: 1}
    )
    registry = ModelRegistry()
    registry.register_instance("hc", instance)
    return registry


def _expected_states(entry, kernel, count, seed, n_chains):
    """The JSON-level solo baseline: run_chains + the canonical encoding."""
    with Runtime("batched", n_chains=n_chains) as runtime:
        states = runtime.run_chains(kernel, entry.instance, count, seed=seed)
    return json.loads(
        json.dumps([encode_state(entry.nodes, state) for state in states])
    )


def _serve(test_body, **server_kwargs):
    """Start a server, run ``test_body(host, port, server)``, close."""

    async def main():
        registry = server_kwargs.pop("registry", None) or _registry()
        server = SamplingServer(registry, **server_kwargs)
        host, port = await server.start()
        try:
            return await test_body(host, port, server)
        finally:
            await server.close()

    return asyncio.run(main())


class TestSampleEndpoint:
    def test_solo_request_is_bit_identical_to_direct_run_chains(self):
        registry = _registry()
        entry = registry.get("hc")

        async def body(host, port, server):
            status, response = await request_json(
                host,
                port,
                "POST",
                "/v1/sample",
                sample_payload("hc", "glauber", 25, seed=7, n_chains=3),
            )
            assert status == 200
            assert response["states"] == _expected_states(
                entry, "glauber", 25, 7, 3
            )
            assert response["n_chains"] == 3 and len(response["states"]) == 3
            assert response["batch_size"] == 1

        _serve(body, registry=registry)

    def test_every_registered_kernel_serves_bit_identically(self):
        registry = _registry()
        entry = registry.get("hc")
        from repro.sampling import registered_kernels

        async def body(host, port, server):
            for kernel in sorted(registered_kernels()):
                status, response = await request_json(
                    host,
                    port,
                    "POST",
                    "/v1/sample",
                    sample_payload("hc", kernel, 12, seed=3, n_chains=2),
                )
                assert status == 200, (kernel, response)
                assert response["states"] == _expected_states(
                    entry, kernel, 12, 3, 2
                ), f"served {kernel} diverges from the direct run"

        _serve(body, registry=registry)

    def test_concurrent_requests_coalesce_and_stay_bit_identical(self):
        """16 concurrent requests, max_batch=4: <= 4 run_chains batches
        (obs counters AND response batch ids agree), every response
        bit-identical to its solo baseline."""
        registry = _registry()
        entry = registry.get("hc")
        n_requests, max_batch = 16, 4
        obs.enable()
        try:
            handle = obs.active()
            batches_before = handle.metrics.counter("serve.batches").value
            coalesced_before = handle.metrics.counter(
                "serve.coalesced_requests"
            ).value

            async def body(host, port, server):
                tasks = [
                    request_json(
                        host,
                        port,
                        "POST",
                        "/v1/sample",
                        sample_payload("hc", "glauber", 20, seed=100 + i),
                    )
                    for i in range(n_requests)
                ]
                return await asyncio.gather(*tasks)

            results = _serve(
                body, registry=registry, max_batch=max_batch, max_wait_ms=250
            )
            batches = (
                handle.metrics.counter("serve.batches").value - batches_before
            )
            coalesced = (
                handle.metrics.counter("serve.coalesced_requests").value
                - coalesced_before
            )
        finally:
            obs.disable()
        assert batches <= math.ceil(n_requests / max_batch)
        assert coalesced == n_requests
        batch_ids = {response["batch_id"] for status, response in results}
        assert len(batch_ids) == batches
        assert sum(response["batch_size"] for _, response in results) >= n_requests
        for i, (status, response) in enumerate(results):
            assert status == 200
            assert response["states"] == _expected_states(
                entry, "glauber", 20, 100 + i, 1
            ), f"request {i} lost bit-identity inside its coalesced batch"

    def test_deadline_returns_504_and_cancels_queued_work(self):
        """A lone request in a never-filling bucket times out -> 504, and
        the all-cancelled bucket is dropped without running a batch."""

        async def body(host, port, server):
            status, response = await request_json(
                host,
                port,
                "POST",
                "/v1/sample",
                sample_payload("hc", "glauber", 10, deadline_ms=80),
            )
            assert status == 504, response
            # Give the (cancelled) bucket's timer a chance to fire, then
            # confirm no batch ever ran for the abandoned request.
            await asyncio.sleep(0.1)
            state = server._models["hc"]
            assert state.coalescer.batches == 0
            assert state.coalescer.outstanding == 0

        # max_batch larger than the request count and a long window: the
        # request can only be answered by the timer, which outlives the
        # deadline.
        _serve(body, max_batch=64, max_wait_ms=10_000)

    def test_queue_cap_returns_429(self):
        async def body(host, port, server):
            first = [
                asyncio.ensure_future(
                    request_json(
                        host,
                        port,
                        "POST",
                        "/v1/sample",
                        sample_payload("hc", "glauber", 10, seed=i),
                    )
                )
                for i in range(2)
            ]
            # Wait until both are admitted (queued in the coalescer).
            for _ in range(200):
                await asyncio.sleep(0.01)
                state = server._models.get("hc")
                if state is not None and state.coalescer.outstanding >= 2:
                    break
            status, response = await request_json(
                host,
                port,
                "POST",
                "/v1/sample",
                sample_payload("hc", "glauber", 10, seed=99),
            )
            assert status == 429, response
            assert "outstanding" in response["error"]
            # Unblock the queued pair so close() drains clean.
            results = await asyncio.gather(*first)
            assert all(status == 200 for status, _ in results)

        _serve(body, max_batch=64, max_wait_ms=3_000, max_queue=2)

    def test_graceful_drain_completes_in_flight_requests(self):
        """Requests queued when close() is called still get 200 + correct
        states: the drain flushes them as one final batch."""
        registry = _registry()
        entry = registry.get("hc")

        async def body(host, port, server):
            tasks = [
                asyncio.ensure_future(
                    request_json(
                        host,
                        port,
                        "POST",
                        "/v1/sample",
                        sample_payload("hc", "glauber", 15, seed=40 + i),
                    )
                )
                for i in range(3)
            ]
            for _ in range(200):
                await asyncio.sleep(0.01)
                state = server._models.get("hc")
                if state is not None and state.coalescer.outstanding >= 3:
                    break
            await server.close()  # idempotent with the fixture's close
            results = await asyncio.gather(*tasks)
            for i, (status, response) in enumerate(results):
                assert status == 200
                assert response["states"] == _expected_states(
                    entry, "glauber", 15, 40 + i, 1
                )
            # After the drain, new requests are refused.
            status, response = await request_json(
                host, port, "GET", "/v1/healthz"
            )

        # The post-drain connection attempt may fail outright (listener
        # closed) -- both outcomes are a correct refusal.
        async def wrapped(host, port, server):
            try:
                await body(host, port, server)
            except OSError:
                pass

        _serve(wrapped, registry=registry, max_batch=64, max_wait_ms=5_000)


class TestRegistryEndpoints:
    def test_unknown_model_is_404(self):
        async def body(host, port, server):
            status, response = await request_json(
                host, port, "POST", "/v1/sample", sample_payload("nope", count=5)
            )
            assert status == 404
            assert "unknown model" in response["error"]

        _serve(body)

    def test_unknown_kernel_and_malformed_payloads_are_400(self):
        async def body(host, port, server):
            cases = [
                {"model": "hc", "kernel": "bogus", "count": 5},
                {"model": "hc", "count": 0},
                {"model": "hc", "count": 5, "n_chains": 0},
                {"model": "hc", "count": 5, "deadline_ms": -3},
                {"count": 5},
            ]
            for payload in cases:
                status, response = await request_json(
                    host, port, "POST", "/v1/sample", payload
                )
                assert status == 400, (payload, response)

        _serve(body)

    def test_put_registers_a_model_and_serves_it(self):
        async def body(host, port, server):
            spec = {
                "family": "hardcore",
                "graph": {"kind": "cycle", "n": 8},
                "fugacity": 1.5,
                "pinning": {"0": 1},
            }
            status, response = await request_json(
                host, port, "PUT", "/v1/models/put-model", spec
            )
            assert status == 200
            assert response["registered"]["name"] == "put-model"
            status, listing = await request_json(host, port, "GET", "/v1/models")
            assert "put-model" in [m["name"] for m in listing["models"]]
            status, sampled = await request_json(
                host,
                port,
                "POST",
                "/v1/sample",
                sample_payload("put-model", "glauber", 10, seed=2),
            )
            assert status == 200
            # Bit-identity against an instance built locally from the
            # same declarative payload.
            from repro.serve import build_instance
            from repro.serve.registry import ModelRegistry as _Reg

            local = _Reg()
            entry = local.register_instance(
                "local", build_instance(spec)[0]
            )
            assert sampled["states"] == _expected_states(
                entry, "glauber", 10, 2, 1
            )

        _serve(body)

    def test_invalid_registrations_are_400(self):
        async def body(host, port, server):
            cases = [
                ("bad..name!!", {"family": "hardcore", "graph": {"kind": "cycle", "n": 5}}),
                ("ok", {"family": "nope", "graph": {"kind": "cycle", "n": 5}}),
                ("ok", {"family": "hardcore", "graph": {"kind": "moebius", "n": 5}}),
                ("ok", {"family": "coloring", "graph": {"kind": "cycle", "n": 5}}),
                ("ok", {"family": "hardcore"}),
                ("ok", []),
            ]
            for name, payload in cases:
                status, response = await request_json(
                    host, port, "PUT", f"/v1/models/{name}", payload
                )
                assert status == 400, (name, payload, response)
            # Infeasible pinning: two adjacent occupied hardcore nodes.
            status, response = await request_json(
                host,
                port,
                "PUT",
                "/v1/models/ok",
                {
                    "family": "hardcore",
                    "graph": {"kind": "cycle", "n": 5},
                    "pinning": {"0": 1, "1": 1},
                },
            )
            assert status == 400

        _serve(body)

    def test_registration_can_be_disabled(self):
        async def body(host, port, server):
            status, response = await request_json(
                host,
                port,
                "PUT",
                "/v1/models/denied",
                {"family": "hardcore", "graph": {"kind": "cycle", "n": 5}},
            )
            assert status == 405

        _serve(body, allow_register=False)


class TestMarginalEndpoint:
    def test_streamed_marginals_match_the_serial_loop(self):
        registry = _registry()
        instance = registry.get("hc").instance
        expected = {
            node: padded_ball_marginal(instance, node, 1)
            for node in instance.free_nodes
        }

        async def body(host, port, server):
            status, lines = await request_ndjson(
                host, port, "/v1/marginal", {"model": "hc", "radius": 1}
            )
            assert status == 200
            served = {
                line["node"]: {value: p for value, p in line["marginal"]}
                for line in lines
            }
            assert served == expected

        _serve(body, registry=registry)

    def test_marginal_validation_errors(self):
        async def body(host, port, server):
            status, _ = await request_json(
                host, port, "POST", "/v1/marginal", {"model": "nope", "radius": 1}
            )
            assert status == 404
            status, _ = await request_json(
                host, port, "POST", "/v1/marginal", {"model": "hc", "radius": -1}
            )
            assert status == 400
            status, _ = await request_json(
                host,
                port,
                "POST",
                "/v1/marginal",
                {"model": "hc", "radius": 1, "nodes": ["77"]},
            )
            assert status == 400

        _serve(body)


class TestOperational:
    def test_healthz_and_snapshot_serving_block(self):
        async def body(host, port, server):
            status, before = await request_json(host, port, "GET", "/v1/healthz")
            assert status == 200 and before["status"] == "ok"
            await request_json(
                host,
                port,
                "POST",
                "/v1/sample",
                sample_payload("hc", "glauber", 5, seed=1),
            )
            status, after = await request_json(host, port, "GET", "/v1/healthz")
            assert after["serving"]["hc"]["batches"] == 1
            assert after["serving"]["hc"]["served"] == 1
            assert after["serving"]["hc"]["outstanding"] == 0
            # The shared runtime's snapshot carries the serving block.
            snapshot = server._models["hc"].runtime.snapshot()
            assert snapshot["serve"]["model"] == "hc"
            assert snapshot["serve"]["batches"] == 1

        _serve(body)

    def test_unknown_route_is_404_and_bad_json_is_400(self):
        async def body(host, port, server):
            status, _ = await request_json(host, port, "GET", "/v1/nothing")
            assert status == 404
            from repro.serve.client import request as raw_request

            status, _, body_bytes = await raw_request(
                host, port, "POST", "/v1/sample", payload=None
            )
            # Empty body decodes as {} -> missing model -> 400.
            assert status == 400
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b"POST /v1/sample HTTP/1.1\r\nContent-Length: 7\r\n\r\nnotjson"
            )
            await writer.drain()
            line = await reader.readline()
            assert b"400" in line
            writer.close()
            await writer.wait_closed()

        _serve(body)

    def test_request_ids_and_batch_span_are_stitched(self):
        """Each request gets its own id; the coalesced batch's span lists
        every request id it served (the trace stitch)."""
        obs.enable()
        try:

            async def body(host, port, server):
                tasks = [
                    request_json(
                        host,
                        port,
                        "POST",
                        "/v1/sample",
                        sample_payload("hc", "glauber", 10, seed=i),
                    )
                    for i in range(4)
                ]
                return await asyncio.gather(*tasks)

            results = _serve(body, max_batch=4, max_wait_ms=250)
            request_ids = {response["request_id"] for _, response in results}
            assert len(request_ids) == 4
            batch_events = [
                event
                for event in obs.events()
                if event.get("name") == "serve.batch"
            ]
            served = set()
            for event in batch_events:
                served.update(event["attrs"]["requests"].split(","))
            assert request_ids <= served
            trace_ids = {event["trace"] for event in obs.events()}
            assert len(trace_ids) == 1
        finally:
            obs.disable()
