"""Property-based round-trip tests of the cluster wire protocol framing.

``cluster/protocol.py`` is the trust boundary of the distributed backend,
so its framing gets randomized coverage beyond the handshake unit tests:
seeded ``numpy.random`` generators (no new test dependency) drive random
payload shapes and sizes through every frame kind, HMAC on and off, and
the limit boundaries are pinned exactly -- a payload pickling to exactly
the control-frame cap round-trips, one byte more is refused by *both*
sides, and an oversized length field is rejected on the header alone
(no allocation, no payload read).

Each case uses a fresh ``socket.socketpair()`` -- a real kernel socket
pair, the same transport the coordinator and workers speak over TCP.
"""

from __future__ import annotations

import hashlib
import hmac
import pickle
import socket
import struct
import threading

import numpy as np
import pytest

from repro.cluster.protocol import (
    ERROR,
    HEARTBEAT,
    HELLO,
    MAGIC,
    MAGIC_AUTH,
    MAX_CONTROL_FRAME_BYTES,
    MAX_FRAME_BYTES,
    MESSAGE_NAMES,
    RESULT,
    SPEC,
    TASK,
    TAG_BYTES,
    AuthenticationError,
    ConnectionClosed,
    ProtocolError,
    check_hello,
    frame_limit,
    hello_payload,
    normalize_auth_key,
    recv_message,
    send_message,
)

ALL_KINDS = sorted(MESSAGE_NAMES)
KEY = normalize_auth_key("property-test-key")


def _roundtrip(kind, payload, key=None):
    """Send one frame through a real socketpair and receive it back.

    The send runs on a helper thread: frames bigger than the kernel's
    socket buffer (a few hundred KB for AF_UNIX) would deadlock a
    single-threaded send-then-receive.
    """
    left, right = socket.socketpair()
    try:
        sender = threading.Thread(
            target=send_message, args=(left, kind, payload), kwargs={"key": key}
        )
        sender.start()
        try:
            return recv_message(right, key=key)
        finally:
            sender.join(timeout=30)
            assert not sender.is_alive(), "sender thread wedged"
    finally:
        left.close()
        right.close()


def _random_payload(rng: np.random.Generator):
    """One random payload: nested JSON-ish shapes, numpy arrays, bytes."""
    choice = int(rng.integers(0, 6))
    if choice == 0:
        return None
    if choice == 1:
        return {
            f"k{i}": int(value)
            for i, value in enumerate(rng.integers(-(2 ** 40), 2 ** 40, size=5))
        }
    if choice == 2:
        return [float(x) for x in rng.normal(size=int(rng.integers(0, 32)))]
    if choice == 3:
        return rng.bytes(int(rng.integers(0, 4096)))
    if choice == 4:
        return rng.standard_normal(size=(int(rng.integers(1, 8)), 3))
    return ("task", int(rng.integers(0, 1 << 31)), {"args": rng.bytes(17)})


def _payloads_equal(sent, received) -> bool:
    if isinstance(sent, np.ndarray):
        return isinstance(received, np.ndarray) and np.array_equal(
            sent, received, equal_nan=True
        )
    if isinstance(sent, tuple):
        return isinstance(received, tuple) and len(sent) == len(received) and all(
            _payloads_equal(a, b) for a, b in zip(sent, received)
        )
    return sent == received


def _pickled_bytes_of_size(target: int) -> bytes:
    """A bytes payload whose *pickle* is exactly ``target`` bytes long."""
    # pickle overhead depends (slightly) on the payload size -- framing
    # kicks in for large objects -- so solve by fixed-point iteration.
    size = target
    for _ in range(8):
        overhead = (
            len(pickle.dumps(b"\x00" * size, protocol=pickle.HIGHEST_PROTOCOL)) - size
        )
        if size + overhead == target:
            break
        size = target - overhead
    payload = b"\x00" * size
    assert len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)) == target
    return payload


class TestRandomizedRoundTrips:
    @pytest.mark.parametrize("kind", ALL_KINDS, ids=[MESSAGE_NAMES[k] for k in ALL_KINDS])
    @pytest.mark.parametrize("keyed", [False, True], ids=["plain", "hmac"])
    def test_every_kind_roundtrips_random_payloads(self, kind, keyed):
        rng = np.random.default_rng(1000 * kind + int(keyed))
        for _ in range(16):
            payload = _random_payload(rng)
            got_kind, got_payload = _roundtrip(
                kind, payload, key=KEY if keyed else None
            )
            assert got_kind == kind
            assert _payloads_equal(payload, got_payload)

    @pytest.mark.parametrize("keyed", [False, True], ids=["plain", "hmac"])
    def test_random_payload_sizes_up_to_megabytes(self, keyed):
        """Log-uniform payload sizes, including multi-chunk receives
        (recv reads at most 1 MiB per chunk)."""
        rng = np.random.default_rng(7 + int(keyed))
        sizes = sorted(
            int(x) for x in np.exp(rng.uniform(0, np.log(3 * (1 << 20)), size=8))
        )
        for size in sizes:
            payload = rng.bytes(size)
            got_kind, got_payload = _roundtrip(
                RESULT, payload, key=KEY if keyed else None
            )
            assert got_kind == RESULT and got_payload == payload

    def test_back_to_back_frames_stay_delimited(self):
        """Many frames on one connection parse back in order -- the length
        prefix really does delimit the stream."""
        rng = np.random.default_rng(42)
        left, right = socket.socketpair()
        try:
            sent = []
            for _ in range(20):
                kind = int(rng.choice([SPEC, TASK, RESULT, ERROR]))
                payload = rng.bytes(int(rng.integers(0, 2048)))
                sent.append((kind, payload))
                send_message(left, kind, payload, key=KEY)
            for kind, payload in sent:
                got_kind, got_payload = recv_message(right, key=KEY)
                assert (got_kind, got_payload) == (kind, payload)
        finally:
            left.close()
            right.close()


class TestLimitBoundaries:
    def test_control_frame_at_the_cap_roundtrips(self):
        payload = _pickled_bytes_of_size(MAX_CONTROL_FRAME_BYTES)
        kind, received = _roundtrip(HEARTBEAT, payload)
        assert kind == HEARTBEAT and received == payload

    @pytest.mark.parametrize("kind", [HELLO, HEARTBEAT], ids=["HELLO", "HEARTBEAT"])
    def test_control_frame_one_byte_over_is_refused_by_the_sender(self, kind):
        payload = _pickled_bytes_of_size(MAX_CONTROL_FRAME_BYTES + 1)
        left, right = socket.socketpair()
        try:
            # A send timeout turns a regression (limit not enforced, so the
            # 1 MiB frame wedges in the kernel buffer) into a failure.
            left.settimeout(5.0)
            with pytest.raises(ProtocolError, match="refusing to send"):
                send_message(left, kind, payload)
        finally:
            left.close()
            right.close()

    @pytest.mark.parametrize(
        ("kind", "limit"),
        [(HELLO, MAX_CONTROL_FRAME_BYTES), (RESULT, MAX_FRAME_BYTES)],
        ids=["control", "data"],
    )
    def test_oversize_length_field_is_rejected_on_the_header_alone(self, kind, limit):
        """A crafted header claiming limit+1 payload bytes is refused
        before any payload byte is read -- no allocation happens, so even
        the 1 GiB data limit is testable."""
        left, right = socket.socketpair()
        try:
            header = struct.pack(">4sBQ", MAGIC, kind, limit + 1)
            left.sendall(header)
            with pytest.raises(ProtocolError, match="exceeds"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_per_kind_limits_are_what_the_docs_promise(self):
        for kind in ALL_KINDS:
            expected = (
                MAX_CONTROL_FRAME_BYTES if kind in (HELLO, HEARTBEAT) else MAX_FRAME_BYTES
            )
            assert frame_limit(kind) == expected


class TestAuthenticationProperties:
    def test_random_bit_flips_in_the_payload_always_fail_the_tag(self):
        """Flip one random payload byte per trial (tamperer without the
        key): every single one must raise AuthenticationError, never
        unpickle."""
        rng = np.random.default_rng(99)
        payload = rng.bytes(2048)
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        for _ in range(16):
            left, right = socket.socketpair()
            try:
                header = struct.pack(">4sBQ", MAGIC_AUTH, RESULT, len(data))
                mac = hmac.new(KEY, header, hashlib.sha256)
                mac.update(data)
                position = int(rng.integers(0, len(data)))
                tampered = (
                    data[:position]
                    + bytes([data[position] ^ (1 << int(rng.integers(0, 8)))])
                    + data[position + 1 :]
                )
                left.sendall(header + tampered + mac.digest())
                with pytest.raises(AuthenticationError, match="HMAC verification failed"):
                    recv_message(right, key=KEY)
            finally:
                left.close()
                right.close()

    def test_wrong_key_fails_every_kind(self):
        rng = np.random.default_rng(5)
        for kind in ALL_KINDS:
            left, right = socket.socketpair()
            try:
                send_message(left, kind, rng.bytes(64), key=KEY)
                with pytest.raises(AuthenticationError):
                    recv_message(right, key=normalize_auth_key("some-other-key"))
            finally:
                left.close()
                right.close()

    def test_mode_mismatches_are_header_level_rejections(self):
        # Authenticated frame at a keyless receiver.
        left, right = socket.socketpair()
        try:
            send_message(left, TASK, b"x", key=KEY)
            with pytest.raises(AuthenticationError, match="no auth key"):
                recv_message(right)
        finally:
            left.close()
            right.close()
        # Plain frame at a keyed receiver.
        left, right = socket.socketpair()
        try:
            send_message(left, TASK, b"x")
            with pytest.raises(AuthenticationError, match="requires HMAC"):
                recv_message(right, key=KEY)
        finally:
            left.close()
            right.close()

    def test_hello_payload_roundtrip_and_check(self):
        kind, payload = _roundtrip(
            HELLO, hello_payload("worker", auth=True, capacity=3), key=KEY
        )
        assert kind == HELLO
        checked = check_hello(payload, "worker", auth=True)
        assert checked["capacity"] == 3


class TestTruncationAndGarbage:
    def test_truncated_frames_raise_connection_closed(self):
        """Cut a valid frame at random points: every cut raises
        ConnectionClosed, never a partial parse."""
        rng = np.random.default_rng(11)
        payload = rng.bytes(512)
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        frame = struct.pack(">4sBQ", MAGIC, RESULT, len(data)) + data
        cuts = sorted(set(int(x) for x in rng.integers(0, len(frame), size=8)))
        for cut in cuts:
            left, right = socket.socketpair()
            try:
                left.sendall(frame[:cut])
                left.close()
                with pytest.raises(ConnectionClosed):
                    recv_message(right)
            finally:
                right.close()

    def test_random_garbage_never_parses(self):
        """Random byte blobs (wrong magic with overwhelming probability)
        are rejected as ProtocolError/ConnectionClosed -- never returned
        as a message."""
        rng = np.random.default_rng(23)
        for _ in range(16):
            blob = rng.bytes(int(rng.integers(13, 256)))
            if blob[:4] in (MAGIC, MAGIC_AUTH):  # pragma: no cover - 2^-32-ish
                continue
            left, right = socket.socketpair()
            try:
                left.sendall(blob)
                left.close()
                with pytest.raises(ProtocolError):
                    recv_message(right)
            finally:
                right.close()

    def test_unknown_message_type_is_rejected(self):
        left, right = socket.socketpair()
        try:
            header = struct.pack(">4sBQ", MAGIC, 250, 0)
            left.sendall(header)
            with pytest.raises(ProtocolError, match="unknown message type"):
                recv_message(right)
            with pytest.raises(ProtocolError, match="unknown message type"):
                send_message(left, 250, None)
        finally:
            left.close()
            right.close()

    def test_undecodable_payload_is_a_protocol_error(self):
        left, right = socket.socketpair()
        try:
            garbage = b"\x80\x05this is not a pickle"
            header = struct.pack(">4sBQ", MAGIC, RESULT, len(garbage))
            left.sendall(header + garbage)
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_message(right)
        finally:
            left.close()
            right.close()
