"""Tests for the strong-spatial-mixing measurement toolkit."""

import pytest

from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph, star_graph
from repro.models import hardcore_model, hardcore_uniqueness_threshold, ising_model
from repro.spatialmixing import (
    boundary_influence,
    estimate_decay_rate,
    locality_required,
    long_range_correlation,
    ssm_profile,
)
from repro.spatialmixing.phase_transition import locality_profile


class TestBoundaryInfluence:
    def test_independent_boundary_has_no_influence(self):
        # On a path, the influence of the far end decays; with a single
        # feasible boundary configuration the influence is zero by definition.
        distribution = hardcore_model(path_graph(3), fugacity=1.0)
        tv, mult = boundary_influence(distribution, 0, [2], base_pinning={1: 1})
        # Node 1 occupied forces node 2 empty: only one feasible boundary.
        assert tv == 0.0 and mult == 0.0

    def test_adjacent_boundary_has_large_influence(self):
        distribution = hardcore_model(path_graph(4), fugacity=1.0)
        tv, mult = boundary_influence(distribution, 1, [0])
        assert tv > 0.2
        assert mult == pytest.approx(float("inf"))

    def test_center_in_boundary_rejected(self):
        distribution = hardcore_model(path_graph(3), fugacity=1.0)
        with pytest.raises(ValueError):
            boundary_influence(distribution, 0, [0, 1])

    def test_max_configs_subsampling(self):
        distribution = hardcore_model(star_graph(6), fugacity=1.0)
        tv_full, _ = boundary_influence(distribution, 0, list(range(1, 7)), max_configs=None)
        tv_sub, _ = boundary_influence(distribution, 0, list(range(1, 7)), max_configs=4, seed=1)
        assert tv_sub <= tv_full + 1e-12


class TestSSMProfile:
    def test_profile_decays_on_cycle(self):
        distribution = hardcore_model(cycle_graph(12), fugacity=1.0)
        profile = ssm_profile(distribution, 0, radii=[1, 2, 3, 4])
        assert [row["radius"] for row in profile] == [1.0, 2.0, 3.0, 4.0]
        assert profile[-1]["tv"] < profile[0]["tv"]

    def test_decay_rate_estimate_in_uniqueness_regime(self):
        distribution = hardcore_model(cycle_graph(12), fugacity=0.8)
        profile = ssm_profile(distribution, 0, radii=[1, 2, 3, 4, 5])
        rate = estimate_decay_rate(profile)
        assert 0.0 < rate < 0.9

    def test_estimate_decay_rate_needs_two_rows(self):
        with pytest.raises(ValueError):
            estimate_decay_rate([{"radius": 1.0, "tv": 0.1}])

    def test_multiplicative_column(self):
        distribution = ising_model(cycle_graph(10), interaction=0.2)
        profile = ssm_profile(distribution, 0, radii=[1, 2, 3])
        rate = estimate_decay_rate(profile, key="multiplicative")
        assert rate >= 0.0


class TestPhaseTransitionMeasures:
    def test_locality_required_small_in_uniqueness(self):
        distribution = hardcore_model(cycle_graph(12), fugacity=0.5)
        instance = SamplingInstance(distribution, {0: 1})
        radius = locality_required(instance, 6, error=0.05)
        assert radius <= 4

    def test_locality_required_zero_for_exactly_determined_node(self):
        distribution = hardcore_model(path_graph(3), fugacity=1.0)
        instance = SamplingInstance(distribution, {1: 1})
        # Node 0 neighbours an occupied node: its marginal is determined at
        # radius covering that neighbour (the +2l padding sees it at radius 0).
        assert locality_required(instance, 0, error=0.01) <= 1

    def test_locality_required_validation(self):
        distribution = hardcore_model(path_graph(3), fugacity=1.0)
        instance = SamplingInstance(distribution)
        with pytest.raises(ValueError):
            locality_required(instance, 0, error=0.0)

    def test_long_range_correlation_decays_below_threshold(self):
        # Star graph: the hardcore model on a star with high fugacity has a
        # strong correlation between the hub and the leaves, while a path in
        # the uniqueness regime decorrelates quickly.
        unique = hardcore_model(path_graph(9), fugacity=0.5)
        instance = SamplingInstance(unique)
        near = long_range_correlation(instance, 4, distance=1)
        far = long_range_correlation(instance, 4, distance=4)
        assert far < near

    def test_locality_profile_rows(self):
        instances = [
            SamplingInstance(hardcore_model(cycle_graph(n), fugacity=0.5), {0: 1})
            for n in (6, 8, 10)
        ]
        rows = locality_profile(instances, lambda inst: inst.size // 2, error=0.1)
        assert [row["size"] for row in rows] == [6.0, 8.0, 10.0]
        assert all(row["radius"] >= 0 for row in rows)
