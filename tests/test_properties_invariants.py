"""Cross-cutting property-based tests of the paper's structural invariants.

These hypothesis tests target the invariants the reductions lean on, across
randomly generated small instances:

* conditional independence across separators (Proposition 2.1);
* self-reducibility: conditioning commutes with the chain rule;
* SSM-bound consistency: the ball-local inference error is bounded by the
  worst-case boundary influence at the ball's radius (the inequality behind
  Theorem 5.1);
* the JVV acceptance identity: the product of acceptance probabilities
  telescopes to the ratio the proof of Lemma 4.8 uses.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import total_variation
from repro.gibbs import Pinning, SamplingInstance
from repro.graphs import cycle_graph, random_tree
from repro.inference import ExactInference
from repro.inference.ssm_inference import padded_ball_marginal
from repro.models import hardcore_model, two_spin_model
from repro.spatialmixing import boundary_influence
from repro.graphs.structure import sphere


class TestConditionalIndependence:
    @given(
        fugacity=st.floats(0.3, 2.0),
        seed=st.integers(0, 40),
    )
    @settings(max_examples=15, deadline=None)
    def test_separator_blocks_influence_on_trees(self, fugacity, seed):
        """Pinning a tree node makes the two sides conditionally independent."""
        tree = random_tree(9, seed=seed)
        distribution = hardcore_model(tree, fugacity=fugacity)
        # Pick an internal node as the separator.
        separator = max(tree.nodes(), key=tree.degree)
        neighbours = list(tree.neighbors(separator))
        if len(neighbours) < 2:
            return
        left, right = neighbours[0], neighbours[1]
        pinning = {separator: 0}
        joint = distribution.joint_marginal((left, right), pinning)
        left_marginal = distribution.marginal(left, pinning)
        right_marginal = distribution.marginal(right, pinning)
        for (value_left, value_right), probability in joint.items():
            assert probability == pytest.approx(
                left_marginal[value_left] * right_marginal[value_right], abs=1e-9
            )


class TestSelfReducibility:
    @given(fugacity=st.floats(0.3, 2.0), n=st.integers(4, 8))
    @settings(max_examples=15, deadline=None)
    def test_conditioning_matches_direct_conditional(self, fugacity, n):
        """mu^{tau}(. | extra) equals mu^{tau ∪ extra} (Remark 2.2)."""
        distribution = hardcore_model(cycle_graph(n), fugacity=fugacity)
        base = SamplingInstance(distribution, {0: 1})
        extra = {2: 0}
        reduced = base.conditioned(extra)
        probe = 3 if n > 3 else 1
        direct = distribution.marginal(probe, {0: 1, 2: 0})
        via_instance = reduced.target_marginal(probe)
        assert total_variation(direct, via_instance) < 1e-12


class TestSSMBoundsBallInference:
    @given(fugacity=st.floats(0.3, 3.0), radius=st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_ball_error_at_most_boundary_influence(self, fugacity, radius):
        """The Theorem 5.1 estimate errs by at most the influence at its radius.

        The padded-ball estimate equals the exact marginal under *some*
        feasible boundary configuration at distance > radius, so its error is
        bounded by the worst-case influence of that sphere (plus numerical
        slack).
        """
        distribution = hardcore_model(cycle_graph(10), fugacity=fugacity)
        instance = SamplingInstance(distribution)
        node = 5
        estimate = padded_ball_marginal(instance, node, radius)
        exact = instance.target_marginal(node)
        error = total_variation(estimate, exact)
        shell = sphere(distribution.graph, node, radius + 1)
        if not shell:
            return
        influence, _ = boundary_influence(distribution, node, shell, max_configs=None)
        assert error <= influence + 1e-9


class TestJVVTelescoping:
    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_acceptance_product_matches_lemma_48(self, seed):
        """With an exact oracle, every per-node acceptance equals exp(-3/n^2).

        This is the telescoped form of the Lemma 4.8 identity
        Pr[accept | Y] = mu_hat(sigma_0) w(Y) / (mu_hat(Y) w(sigma_0)) e^{-3/n}
        specialised to mu_hat = mu (exact inference).
        """
        from repro.localmodel import Network, run_slocal_algorithm
        from repro.sampling.jvv import LocalJVVSampler

        distribution = two_spin_model(cycle_graph(5), beta=0.5, gamma=1.2, field=0.8)
        instance = SamplingInstance(distribution)
        algorithm = LocalJVVSampler(instance, ExactInference())
        network = Network(instance.graph, seed=seed)
        result = run_slocal_algorithm(algorithm, network)
        expected = math.exp(-3.0 / instance.size ** 2)
        for node in network.nodes:
            assert result.states[node]["acceptance"] == pytest.approx(expected, rel=1e-6)
