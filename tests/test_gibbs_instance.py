"""Unit tests for SamplingInstance (the (G, x, tau) objects)."""

import pytest

from repro.gibbs import Pinning, SamplingInstance
from repro.models import hardcore_model
from repro.graphs import cycle_graph


class TestSamplingInstance:
    def test_basic_accessors(self, pinned_hardcore_instance):
        instance = pinned_hardcore_instance
        assert instance.size == 6
        assert set(instance.alphabet) == {0, 1}
        assert 0 not in instance.free_nodes
        assert 3 not in instance.free_nodes
        assert len(instance.free_nodes) == 4

    def test_feasibility_check_on_construction(self, hardcore_cycle):
        with pytest.raises(ValueError):
            SamplingInstance(hardcore_cycle, {0: 1, 1: 1}, check_feasible=True)
        # Without the flag the constructor accepts it (lazy validation).
        SamplingInstance(hardcore_cycle, {0: 1, 1: 1})

    def test_conditioned_is_self_reduction(self, hardcore_instance):
        conditioned = hardcore_instance.conditioned({0: 1})
        assert conditioned.pinning == Pinning({0: 1})
        twice = conditioned.conditioned({2: 0})
        assert dict(twice.pinning) == {0: 1, 2: 0}
        # The original instance is unchanged (pinning objects are immutable).
        assert len(hardcore_instance.pinning) == 0

    def test_conditioned_conflict_rejected(self, pinned_hardcore_instance):
        with pytest.raises(ValueError):
            pinned_hardcore_instance.conditioned({0: 0})

    def test_target_marginal_respects_pinning(self, pinned_hardcore_instance):
        # Node 1 neighbours the occupied node 0, so it must be empty.
        marginal = pinned_hardcore_instance.target_marginal(1)
        assert marginal[0] == pytest.approx(1.0)

    def test_target_probability(self, hardcore_instance):
        configuration = {node: 0 for node in hardcore_instance.distribution.nodes}
        expected = 1.0 / hardcore_instance.distribution.partition_function()
        assert hardcore_instance.target_probability(configuration) == pytest.approx(expected)

    def test_is_feasible_extension(self, pinned_hardcore_instance):
        assert pinned_hardcore_instance.is_feasible_extension({2: 1})
        assert not pinned_hardcore_instance.is_feasible_extension({1: 1})

    def test_full_configuration_merges_pinning(self, pinned_hardcore_instance):
        full = pinned_hardcore_instance.full_configuration({1: 0, 2: 0, 4: 0, 5: 0})
        assert full[0] == 1 and full[3] == 0
        assert len(full) == 6
