"""Unit tests for the LOCAL-model driver."""

import pytest

from repro.graphs import cycle_graph, path_graph
from repro.localmodel import LocalNodeAlgorithm, Network, run_local_algorithm


class CountBallAlgorithm(LocalNodeAlgorithm):
    """Outputs the size of the node's radius-r ball (a canonical LOCAL task)."""

    def __init__(self, r):
        self.r = r

    def radius(self, network):
        return self.r

    def compute(self, view):
        return len(view.nodes), False


class FailAtHighIdAlgorithm(LocalNodeAlgorithm):
    """Fails at nodes whose ID exceeds a threshold (locally certifiable failure)."""

    def radius(self, network):
        return 1

    def compute(self, view):
        my_id = view.ids[view.center]
        return my_id, my_id >= 3


class RandomBitAlgorithm(LocalNodeAlgorithm):
    """Outputs one private random bit; used to check reproducibility."""

    def radius(self, network):
        return 0

    def compute(self, view):
        return int(view.rng().integers(0, 2)), False


class TestRunLocalAlgorithm:
    def test_ball_sizes_on_cycle(self):
        network = Network(cycle_graph(7))
        result = run_local_algorithm(CountBallAlgorithm(2), network)
        assert result.rounds == 2
        assert all(output == 5 for output in result.outputs.values())
        assert result.success

    def test_ball_sizes_on_path_boundary_effects(self):
        network = Network(path_graph(5))
        result = run_local_algorithm(CountBallAlgorithm(1), network)
        assert result.outputs[0] == 2
        assert result.outputs[2] == 3

    def test_failures_are_reported(self):
        network = Network(path_graph(5))
        result = run_local_algorithm(FailAtHighIdAlgorithm(), network)
        assert not result.success
        assert result.failure_count == 2
        assert set(result.failed_nodes) == {3, 4}

    def test_subset_of_nodes(self):
        network = Network(cycle_graph(6))
        result = run_local_algorithm(CountBallAlgorithm(1), network, nodes=[0, 3])
        assert set(result.outputs) == {0, 3}

    def test_reproducible_given_seed(self):
        first = run_local_algorithm(RandomBitAlgorithm(), Network(cycle_graph(6), seed=5))
        second = run_local_algorithm(RandomBitAlgorithm(), Network(cycle_graph(6), seed=5))
        third = run_local_algorithm(RandomBitAlgorithm(), Network(cycle_graph(6), seed=6))
        assert first.outputs == second.outputs
        assert first.outputs != third.outputs

    def test_negative_radius_rejected(self):
        class Broken(LocalNodeAlgorithm):
            def radius(self, network):
                return -1

            def compute(self, view):
                return None, False

        with pytest.raises(ValueError):
            run_local_algorithm(Broken(), Network(path_graph(3)))
