"""Unit tests for the curve-fitting helpers."""

import math

import pytest

from repro.analysis import fit_exponential_decay, fit_power_law, sample_complexity_for_tv
from repro.analysis.fitting import fit_polylog_exponent


class TestExponentialDecayFit:
    def test_recovers_planted_rate(self):
        alpha, constant = 0.6, 3.0
        distances = list(range(1, 10))
        errors = [constant * alpha ** d for d in distances]
        fitted_alpha, fitted_constant = fit_exponential_decay(distances, errors)
        assert fitted_alpha == pytest.approx(alpha, rel=1e-6)
        assert fitted_constant == pytest.approx(constant, rel=1e-6)

    def test_handles_zero_errors_via_floor(self):
        fitted_alpha, _ = fit_exponential_decay([1, 2, 3, 4], [0.1, 0.01, 0.0, 0.0])
        assert 0.0 < fitted_alpha < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_exponential_decay([1, 2], [0.1])
        with pytest.raises(ValueError):
            fit_exponential_decay([1], [0.1])


class TestPowerLawFit:
    def test_recovers_planted_exponent(self):
        sizes = [10, 20, 40, 80, 160]
        costs = [2.5 * n ** 1.5 for n in sizes]
        exponent, constant = fit_power_law(sizes, costs)
        assert exponent == pytest.approx(1.5, rel=1e-6)
        assert constant == pytest.approx(2.5, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])


class TestPolylogFit:
    def test_recovers_planted_log_exponent(self):
        sizes = [2 ** k for k in range(4, 12)]
        costs = [5.0 * math.log(n) ** 3 for n in sizes]
        assert fit_polylog_exponent(sizes, costs) == pytest.approx(3.0, rel=1e-6)

    def test_distinguishes_linear_from_polylog(self):
        sizes = [2 ** k for k in range(4, 12)]
        linear_costs = [0.5 * n for n in sizes]
        polylog_costs = [10.0 * math.log(n) ** 2 for n in sizes]
        assert fit_polylog_exponent(sizes, linear_costs) > 2 * fit_polylog_exponent(
            sizes, polylog_costs
        )


class TestSampleComplexity:
    def test_more_accuracy_needs_more_samples(self):
        assert sample_complexity_for_tv(0.01, 4) > sample_complexity_for_tv(0.1, 4)

    def test_more_outcomes_need_more_samples(self):
        assert sample_complexity_for_tv(0.05, 32) > sample_complexity_for_tv(0.05, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_complexity_for_tv(0.0, 4)
        with pytest.raises(ValueError):
            sample_complexity_for_tv(0.1, 0)
        with pytest.raises(ValueError):
            sample_complexity_for_tv(0.1, 4, confidence=1.0)
