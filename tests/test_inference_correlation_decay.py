"""Tests for the correlation-decay (self-avoiding-walk) inference engine."""

import pytest

from repro.analysis import total_variation
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, grid_graph, path_graph, random_tree
from repro.inference import TwoSpinCorrelationDecayInference, correlation_decay_for
from repro.models import hardcore_model, matching_model, two_spin_model


class TestConstruction:
    def test_for_model_reads_metadata(self):
        hardcore = hardcore_model(cycle_graph(6), fugacity=0.7)
        engine = correlation_decay_for(hardcore)
        assert engine.beta == 0.0
        assert engine.gamma == 1.0
        assert engine.field == pytest.approx(0.7)

    def test_for_model_matching(self):
        matching = matching_model(path_graph(5), edge_weight=1.4)
        engine = correlation_decay_for(matching)
        assert engine.field == pytest.approx(1.4)
        assert engine.decay_rate == pytest.approx(matching.metadata["ssm_decay_rate"])

    def test_for_model_rejects_colorings(self):
        from repro.models import coloring_model

        with pytest.raises(ValueError):
            correlation_decay_for(coloring_model(cycle_graph(5), 3))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TwoSpinCorrelationDecayInference(beta=-1.0, gamma=1.0, field=1.0)
        with pytest.raises(ValueError):
            TwoSpinCorrelationDecayInference(beta=0.0, gamma=1.0, field=0.0)
        with pytest.raises(ValueError):
            TwoSpinCorrelationDecayInference(beta=0.0, gamma=1.0, field=1.0, decay_rate=1.0)

    def test_alphabet_mismatch_rejected(self):
        from repro.models import coloring_model

        engine = TwoSpinCorrelationDecayInference(beta=0.0, gamma=1.0, field=1.0)
        instance = SamplingInstance(coloring_model(path_graph(3), 3))
        with pytest.raises(ValueError):
            engine.marginal(instance, 0, 0.1)


class TestAccuracy:
    def test_exact_on_trees(self):
        # On a tree the self-avoiding-walk recursion with depth >= diameter
        # is the exact tree recursion.
        tree = random_tree(10, seed=4)
        distribution = hardcore_model(tree, fugacity=1.1)
        instance = SamplingInstance(distribution, {0: 0})
        engine = correlation_decay_for(distribution, max_depth=12, decay_rate=None)
        for node in list(instance.free_nodes)[:5]:
            estimate = engine.marginal(instance, node, 1e-6)
            truth = instance.target_marginal(node)
            assert total_variation(estimate, truth) < 1e-6

    def test_error_decays_with_depth_on_cycle(self):
        distribution = hardcore_model(cycle_graph(12), fugacity=1.0)
        instance = SamplingInstance(distribution)
        truth = instance.target_marginal(0)
        errors = []
        for depth in (1, 3, 6, 10):
            engine = TwoSpinCorrelationDecayInference(
                beta=0.0, gamma=1.0, field=1.0, max_depth=depth, decay_rate=0.99
            )
            # decay_rate high so the schedule would pick a huge depth; the
            # explicit cap makes depth the controlled variable.
            errors.append(total_variation(engine.marginal(instance, 0, 0.5), truth))
        assert errors[-1] < errors[0]
        assert errors[-1] < 1e-3

    def test_respects_pinning(self):
        distribution = hardcore_model(path_graph(5), fugacity=1.0)
        instance = SamplingInstance(distribution, {2: 1})
        engine = correlation_decay_for(distribution, max_depth=8)
        # Node 1 neighbours the occupied node 2, so it must be empty.
        estimate = engine.marginal(instance, 1, 0.01)
        assert estimate[1] == pytest.approx(0.0)
        # The pinned node itself reports its point mass.
        assert engine.marginal(instance, 2, 0.01)[1] == pytest.approx(1.0)

    def test_uniqueness_regime_grid_accuracy(self):
        distribution = hardcore_model(grid_graph(3, 4), fugacity=0.5)
        instance = SamplingInstance(distribution, {(0, 0): 1})
        engine = correlation_decay_for(distribution, decay_rate=0.6)
        for node in [(1, 1), (2, 2), (1, 3)]:
            estimate = engine.marginal(instance, node, 0.05)
            truth = instance.target_marginal(node)
            assert total_variation(estimate, truth) <= 0.05

    def test_soft_two_spin_model(self):
        distribution = two_spin_model(cycle_graph(8), beta=0.4, gamma=1.2, field=0.9)
        instance = SamplingInstance(distribution)
        engine = correlation_decay_for(distribution, decay_rate=0.5)
        estimate = engine.marginal(instance, 0, 0.05)
        truth = instance.target_marginal(0)
        assert total_variation(estimate, truth) <= 0.05

    def test_matching_marginals_via_line_graph(self):
        distribution = matching_model(cycle_graph(7), edge_weight=1.0)
        instance = SamplingInstance(distribution)
        engine = correlation_decay_for(distribution)
        for node in list(instance.free_nodes)[:3]:
            estimate = engine.marginal(instance, node, 0.02)
            truth = instance.target_marginal(node)
            assert total_variation(estimate, truth) <= 0.02

    def test_locality_equals_scheduled_depth(self):
        distribution = hardcore_model(cycle_graph(16), fugacity=0.8)
        instance = SamplingInstance(distribution)
        engine = correlation_decay_for(distribution, decay_rate=0.5)
        assert engine.locality(instance, 0.1) == engine._depth(instance, 0.1)
        assert engine.locality(instance, 0.001) > engine.locality(instance, 0.1)
