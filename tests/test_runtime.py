"""Runtime subsystem tests: determinism, pickling, process-pool smoke.

The contract of :mod:`repro.runtime` is threefold:

* the batched chain runner is *bit-identical* per chain to the serial
  samplers under the per-chain seed convention;
* compiled instances and balls round-trip through ``pickle`` (the transport
  of the process backend);
* the process backend produces exactly the serial results while warming the
  parent's ball cache with worker compilations.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.engine.compiled import CompiledGibbs
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, grid_graph, path_graph, random_tree
from repro.inference.ssm_inference import TruncatedBallInference, padded_ball_marginal
from repro.models import coloring_model, hardcore_model, matching_model, two_spin_model
from repro.runtime import (
    ChainBatch,
    InstanceSpec,
    Runtime,
    batched_glauber_sample,
    batched_luby_glauber_sample,
    chain_seed_sequences,
    resolve_runtime,
    shard_compiled_balls,
    shard_padded_ball_marginals,
    stream_ball_marginal_tasks,
    stream_compiled_balls,
    stream_padded_ball_marginals,
)
from repro.runtime.shards import _ball_marginal_chunk, _chunk_tasks
from repro.sampling.glauber import _RNG_CHUNK, glauber_sample, luby_glauber_sample


def _instances():
    return [
        ("hardcore-cycle", SamplingInstance(hardcore_model(cycle_graph(8), 1.3), {0: 1})),
        ("coloring-cycle", SamplingInstance(coloring_model(cycle_graph(6), 3), {0: 2})),
        (
            "two-spin-path",
            SamplingInstance(two_spin_model(path_graph(7), beta=0.5, gamma=1.6, field=1.1)),
        ),
        ("matching-grid", SamplingInstance(matching_model(grid_graph(3, 3), 1.4))),
    ]


INSTANCES = _instances()
INSTANCE_IDS = [label for label, _ in INSTANCES]


@pytest.mark.parametrize(("label", "instance"), INSTANCES, ids=INSTANCE_IDS)
class TestBatchedChainDeterminism:
    """Chain c of a batch equals the serial chain run with seed seeds[c]."""

    def test_glauber_bit_identical(self, label, instance):
        seeds = chain_seed_sequences(7, 5)
        serial = [glauber_sample(instance, 137, seed=seed) for seed in seeds]
        batched = batched_glauber_sample(instance, 137, seeds=seeds)
        assert batched == serial

    def test_luby_glauber_bit_identical(self, label, instance):
        seeds = chain_seed_sequences(11, 5)
        serial = [luby_glauber_sample(instance, 23, seed=seed) for seed in seeds]
        batched = batched_luby_glauber_sample(instance, 23, seeds=seeds)
        assert batched == serial

    def test_integer_seeds_match_serial(self, label, instance):
        # E12 seeds its serial chains with plain integers; explicit seeds
        # reproduce that exactly.
        serial = [luby_glauber_sample(instance, 12, seed=seed) for seed in range(4)]
        batched = batched_luby_glauber_sample(instance, 12, seeds=range(4))
        assert batched == serial


class TestBatchedChainEdges:
    def test_rng_chunk_boundary_is_respected(self):
        instance = SamplingInstance(hardcore_model(path_graph(5), 1.0))
        seeds = chain_seed_sequences(0, 3)
        steps = _RNG_CHUNK + 37
        serial = [glauber_sample(instance, steps, seed=seed) for seed in seeds]
        assert batched_glauber_sample(instance, steps, seeds=seeds) == serial

    def test_spawned_seed_convention(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(6), 1.0))
        from_root = batched_glauber_sample(instance, 50, n_chains=4, seed=9)
        explicit = batched_glauber_sample(
            instance, 50, seeds=chain_seed_sequences(9, 4)
        )
        assert from_root == explicit

    def test_zero_steps_returns_initial(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(6), 1.0))
        initial = glauber_sample(instance, 0, seed=0)
        batch = batched_glauber_sample(instance, 0, n_chains=3, seed=1, initial=initial)
        assert batch == [initial] * 3

    def test_dict_engine_rejected(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(6), 1.0))
        with pytest.raises(ValueError):
            ChainBatch(instance, n_chains=2, engine="dict")

    def test_chain_count_validation(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(6), 1.0))
        with pytest.raises(ValueError):
            ChainBatch(instance, seeds=[])
        with pytest.raises(ValueError):
            ChainBatch(instance, n_chains=2, seeds=[1, 2, 3])
        with pytest.raises(ValueError):
            ChainBatch(instance)

    def test_fully_pinned_instance_is_constant(self):
        distribution = hardcore_model(path_graph(3), 1.0)
        instance = SamplingInstance(distribution, {0: 0, 1: 1, 2: 0})
        batch = ChainBatch(instance, n_chains=2, seed=0)
        batch.glauber_steps(10)
        assert batch.configurations() == [{0: 0, 1: 1, 2: 0}] * 2

    def test_chain_kinds_cannot_be_mixed_on_one_batch(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(6), 1.0))
        batch = ChainBatch(instance, n_chains=2, seed=0)
        batch.luby_rounds(3)
        with pytest.raises(RuntimeError):
            batch.glauber_steps(3)
        other = ChainBatch(instance, n_chains=2, seed=0)
        other.glauber_steps(3)
        with pytest.raises(RuntimeError):
            other.luby_rounds(3)

    def test_luby_trace_shape(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(8), 1.0))
        batch = ChainBatch(instance, n_chains=6, seed=2)
        traces = batch.luby_rounds(15, statistic=lambda codes: codes.mean(axis=1))
        assert traces.shape == (6, 15)
        assert np.all(traces >= 0.0) and np.all(traces <= 1.0)


class TestPickling:
    """CompiledGibbs (and the spec built on it) round-trip through pickle."""

    def test_compiled_gibbs_roundtrip(self):
        distribution = coloring_model(cycle_graph(6), 3)
        compiled = distribution.compiled_engine()
        _ = compiled.conditionals  # populate derived state before pickling
        compiled.marginal(1, {0: 2})  # populate the memo caches too
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.nodes == compiled.nodes
        assert clone.alphabet == compiled.alphabet
        assert clone.scopes == compiled.scopes
        assert clone.partition_function({}) == compiled.partition_function({})
        assert clone.marginal(1, {0: 2}) == compiled.marginal(1, {0: 2})
        # Derived caches are rebuilt, not shipped.
        assert clone._marginal_memo is not compiled._marginal_memo
        for variable in range(len(clone.nodes)):
            assert (
                clone.conditionals.tables[variable]
                == compiled.conditionals.tables[variable]
            )

    def test_compiled_ball_roundtrip(self):
        distribution = hardcore_model(random_tree(14, seed=4), 1.2)
        ball = distribution.ball_cache().compiled_ball(0, 2)
        clone = pickle.loads(pickle.dumps(ball))
        assert clone.nodes == ball.nodes
        assert clone.marginal(0, {}) == ball.marginal(0, {})

    def test_instance_spec_roundtrip(self):
        instance = SamplingInstance(hardcore_model(random_tree(14, seed=4), 1.2), {0: 0})
        spec = pickle.loads(pickle.dumps(InstanceSpec.from_instance(instance)))
        node = instance.free_nodes[3]
        assert spec.padded_ball_marginal(node, 2) == padded_ball_marginal(
            instance, node, 2
        )


class TestSpecEquivalence:
    """The worker-side spec replays the serial per-node computation exactly."""

    def test_padded_ball_marginals_match_serial(self):
        for distribution, pinning in [
            (hardcore_model(random_tree(18, seed=2), 1.1), {0: 0}),
            (coloring_model(cycle_graph(9), 3), {0: 1}),
        ]:
            instance = SamplingInstance(distribution, pinning)
            spec = InstanceSpec.from_instance(instance)
            for radius in (0, 1, 2):
                for node in instance.free_nodes:
                    assert spec.padded_ball_marginal(node, radius) == (
                        padded_ball_marginal(instance, node, radius)
                    )

    def test_compile_ball_matches_cache(self):
        distribution = hardcore_model(random_tree(12, seed=6), 1.5)
        instance = SamplingInstance(distribution)
        spec = InstanceSpec.from_instance(instance)
        cached = distribution.ball_cache().compiled_ball(3, 2)
        built = spec.compile_ball(3, 2)
        assert built.nodes == cached.nodes
        assert built.scopes == cached.scopes
        assert all(
            np.array_equal(a, b) for a, b in zip(built.arrays, cached.arrays)
        )


class TestRuntimeFacade:
    def test_resolve_defaults_to_serial(self):
        assert resolve_runtime(None).is_serial
        assert resolve_runtime("batched").is_batched
        runtime = Runtime("process", n_workers=2)
        assert resolve_runtime(runtime) is runtime

    def test_invalid_backends_rejected(self):
        with pytest.raises(ValueError):
            resolve_runtime("quantum")
        with pytest.raises(ValueError):
            Runtime(n_chains=0)
        with pytest.raises(ValueError):
            resolve_runtime(3.14)

    def test_serial_and_batched_runtimes_agree(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(8), 1.0))
        serial = Runtime("serial", n_chains=3).glauber_sample(instance, 60, seed=5)
        batched = Runtime("batched", n_chains=3).glauber_sample(instance, 60, seed=5)
        assert serial == batched

    def test_sampler_runtime_parameter(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(8), 1.0))
        single = glauber_sample(instance, 40, seed=3)
        batch = glauber_sample(
            instance, 40, seed=3, runtime=Runtime("batched", n_chains=2)
        )
        assert isinstance(batch, list) and len(batch) == 2
        assert batch[0] == glauber_sample(
            instance, 40, seed=chain_seed_sequences(3, 2)[0]
        )
        # runtime=None keeps the historical single-configuration contract.
        assert isinstance(single, dict)
        parallel = luby_glauber_sample(instance, 10, seed=3, runtime="batched")
        assert isinstance(parallel, list) and len(parallel) == 1

    def test_map_serial(self):
        assert Runtime().map(lambda x: x * x, [1, 2, 3]) == [1, 4, 9]


class TestE12Diagnostics:
    def test_batched_e12_matches_serial_and_reports_mixing(self):
        from repro.experiments import e12_baselines

        serial = e12_baselines.run(cycle_size=5, samples=30, glauber_rounds=(6,))
        batched = e12_baselines.run(
            cycle_size=5, samples=30, glauber_rounds=(6,), runtime="batched"
        )
        assert batched[0]["tv_to_target"] == serial[0]["tv_to_target"]
        assert "split_r_hat" in batched[0] and "ess" in batched[0]
        assert isinstance(batched[0]["mixed"], bool)


class TestStreamingMerge:
    """Out-of-order shard payloads merge correctly into the parent cache."""

    def _chunk_payloads(self, instance, radius):
        spec = InstanceSpec.from_instance(instance)
        tasks = [(center, radius) for center in instance.free_nodes]
        return [
            _ball_marginal_chunk(chunk, 64, spec=spec)
            for chunk in _chunk_tasks(tasks, n_workers=2, chunk_size=2)
        ]

    def test_out_of_order_adoption_matches_serial(self):
        distribution = coloring_model(cycle_graph(9), 3)
        instance = SamplingInstance(distribution, {0: 1})
        payloads = self._chunk_payloads(instance, 2)
        cache = distribution.ball_cache()
        merged = {}
        # Adopt shards in reversed completion order -- the merge must be
        # order-independent because worker results are equal by construction.
        for marginals, balls, extras, memos in reversed(payloads):
            cache.adopt(balls=balls, extras=extras, memos=memos)
            for (center, _), marginal in marginals.items():
                merged[center] = marginal
        serial = {
            node: padded_ball_marginal(instance, node, 2)
            for node in instance.free_nodes
        }
        assert merged == serial
        # The serial replay over the warmed cache agrees too (memo hits).
        assert {
            node: padded_ball_marginal(instance, node, 2)
            for node in instance.free_nodes
        } == serial

    def test_memo_deltas_land_in_adopted_balls(self):
        distribution = hardcore_model(cycle_graph(10), 1.2)
        instance = SamplingInstance(distribution, {0: 0})
        payloads = self._chunk_payloads(instance, 2)
        cache = distribution.ball_cache()
        for marginals, balls, extras, memos in payloads:
            assert memos, "workers should ship marginal-memo deltas"
            cache.adopt(balls=balls, extras=extras, memos=memos)
        locality = distribution.locality()
        for node in instance.free_nodes:
            ball = cache._compiled[(node, 2 + locality)]
            assert len(ball._marginal_memo) >= 1

    def test_memo_delta_cap_is_respected(self):
        distribution = coloring_model(cycle_graph(8), 3)
        instance = SamplingInstance(distribution, {0: 1})
        spec = InstanceSpec.from_instance(instance)
        tasks = [(node, 1) for node in instance.free_nodes]
        _, _, _, capped = _ball_marginal_chunk(tasks, 0, spec=spec)
        assert capped == {}
        compiled = distribution.compiled_engine()
        for node in list(distribution.nodes)[:4]:
            compiled.marginal(node, {})
        assert len(compiled.export_marginal_memo(cap=2)) == 2
        assert len(compiled.export_marginal_memo(cap=None)) == 4

    def test_absorb_marginal_memo_prefers_existing_entries(self):
        distribution = hardcore_model(path_graph(5), 1.0)
        compiled = distribution.compiled_engine()
        original = compiled.marginal(2, {})
        exported = compiled.export_marginal_memo()
        poisoned = {key: {value: -1.0 for value in entry} for key, entry in exported.items()}
        assert compiled.absorb_marginal_memo(poisoned) == 0
        assert compiled.marginal(2, {}) == original

    def test_stream_single_worker_runs_in_process(self):
        distribution = hardcore_model(random_tree(12, seed=3), 1.1)
        instance = SamplingInstance(distribution, {0: 0})
        streamed = dict(
            stream_padded_ball_marginals(
                instance, instance.free_nodes, 2, n_workers=1
            )
        )
        serial = {
            node: padded_ball_marginal(instance, node, 2)
            for node in instance.free_nodes
        }
        assert streamed == serial
        assert len(distribution.ball_cache()._compiled) > 0

    def test_stream_empty_tasks(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(6), 1.0))
        assert list(stream_ball_marginal_tasks(instance, [], n_workers=2)) == []
        assert list(stream_compiled_balls(instance, [], n_workers=2)) == []

    def test_failed_task_raises_in_process_path(self):
        # The in-process fallback honours the same clean-error contract as
        # the worker-pool path: a RuntimeError naming the chunk.
        instance = SamplingInstance(hardcore_model(cycle_graph(6), 1.0))
        with pytest.raises(RuntimeError, match="ball shard failed"):
            list(
                stream_ball_marginal_tasks(
                    instance, [("no-such-node", 1)], n_workers=1
                )
            )

    def test_chunking_defaults(self):
        tasks = list(range(17))
        chunks = _chunk_tasks(tasks, n_workers=2)
        assert [task for chunk in chunks for task in chunk] == tasks
        assert max(len(chunk) for chunk in chunks) <= 3
        assert _chunk_tasks([], 2) == []
        with pytest.raises(ValueError):
            _chunk_tasks(tasks, 2, chunk_size=0)


class TestRuntimeStreamingFacade:
    """submit / map_unordered conform on the serial and batched backends."""

    def test_serial_map_unordered_is_in_order(self):
        runtime = Runtime()
        assert list(runtime.map_unordered(lambda x: x * x, [1, 2, 3])) == [
            (0, 1),
            (1, 4),
            (2, 9),
        ]

    def test_batched_map_unordered_is_lazy(self):
        runtime = Runtime("batched", n_chains=2)
        seen = []
        iterator = runtime.map_unordered(lambda x: seen.append(x) or x, [1, 2, 3])
        assert seen == []  # nothing runs until consumed
        assert next(iterator) == (0, 1)
        assert seen == [1]

    def test_serial_submit_returns_resolved_future(self):
        runtime = Runtime()
        future = runtime.submit(lambda a, b: a + b, 2, b=3)
        assert future.done() and future.result() == 5

    def test_serial_submit_captures_exceptions(self):
        future = Runtime().submit(lambda: 1 / 0)
        assert isinstance(future.exception(), ZeroDivisionError)

    def test_stream_ball_marginals_serial_backend(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(8), 1.0), {0: 0})
        streamed = dict(Runtime().stream_ball_marginals(instance, instance.free_nodes, 1))
        assert streamed == Runtime().ball_marginals(instance, instance.free_nodes, 1)


@pytest.mark.slow
class TestProcessPool:
    """Two-worker process-pool smoke tests (the sharding transport)."""

    def test_shard_padded_ball_marginals_matches_serial(self):
        distribution = coloring_model(cycle_graph(10), 3)
        instance = SamplingInstance(distribution, {0: 1})
        sharded = shard_padded_ball_marginals(
            instance, instance.free_nodes, 2, n_workers=2
        )
        serial = {
            node: padded_ball_marginal(instance, node, 2)
            for node in instance.free_nodes
        }
        assert sharded == serial
        # Worker compilations were merged back into the parent cache.
        assert len(distribution.ball_cache()._compiled) > 0

    def test_shard_compiled_balls_warms_cache(self):
        distribution = hardcore_model(random_tree(16, seed=1), 1.0)
        instance = SamplingInstance(distribution)
        tasks = [(node, 2) for node in list(distribution.nodes)[:6]]
        balls = shard_compiled_balls(instance, tasks, n_workers=2)
        assert set(balls) == set(tasks)
        cache = distribution.ball_cache()
        for center, radius in tasks:
            assert cache.compiled_ball(center, radius) is balls[(center, radius)]

    def test_truncated_ball_inference_process_runtime(self):
        distribution = hardcore_model(random_tree(15, seed=8), 1.3)
        instance = SamplingInstance(distribution, {0: 0})
        serial_engine = TruncatedBallInference(radius=2)
        process_engine = TruncatedBallInference(
            radius=2, runtime=Runtime("process", n_workers=2)
        )
        assert process_engine.marginals(instance, 0.05) == serial_engine.marginals(
            instance, 0.05
        )

    def test_dict_engine_request_is_honoured_under_process_runtime(self):
        # The shard transport is compiled-only; an explicit engine="dict"
        # must keep the serial reference loop rather than being silently
        # rerouted to the compiled engine.
        distribution = hardcore_model(cycle_graph(7), 1.1)
        instance = SamplingInstance(distribution, {0: 0})
        reference = TruncatedBallInference(radius=1, engine="dict")
        process_reference = TruncatedBallInference(
            radius=1, engine="dict", runtime=Runtime("process", n_workers=2)
        )
        assert process_reference.marginals(instance, 0.05) == reference.marginals(
            instance, 0.05
        )

    def test_process_runtime_chain_sampling_matches_serial(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(8), 1.0))
        serial = Runtime("serial", n_chains=3).luby_glauber_sample(instance, 10, seed=4)
        process = Runtime("process", n_chains=3, n_workers=2).luby_glauber_sample(
            instance, 10, seed=4
        )
        assert process == serial

    def test_sharding_only_adopts_parent_queried_balls(self):
        # Workers compile context balls (radius + 2*locality) for the greedy
        # extension, but the parent only ever queries radius + locality;
        # only the latter should come back and be adopted.
        distribution = hardcore_model(cycle_graph(10), 1.0)
        instance = SamplingInstance(distribution)
        shard_padded_ball_marginals(instance, instance.free_nodes, 2, n_workers=2)
        locality = distribution.locality()
        adopted = set(distribution.ball_cache()._compiled)
        assert adopted == {(node, 2 + locality) for node in instance.free_nodes}

    def test_process_map_matches_serial(self):
        runtime = Runtime("process", n_workers=2)
        offset = 10  # closure state must be inherited by forked workers
        assert runtime.map(lambda x: x + offset, range(5)) == [10, 11, 12, 13, 14]

    def test_stream_yields_incrementally_and_matches_serial(self):
        distribution = coloring_model(cycle_graph(10), 3)
        instance = SamplingInstance(distribution, {0: 1})
        serial = {
            node: padded_ball_marginal(instance, node, 2)
            for node in instance.free_nodes
        }
        distribution.ball_cache().clear()
        streamed = {}
        stream = stream_padded_ball_marginals(
            instance, instance.free_nodes, 2, n_workers=2, chunk_size=2
        )
        first = next(stream)
        # The first shard arrives before the stream is drained: at this
        # point only a strict subset of the work has been merged.
        assert len(distribution.ball_cache()._compiled) < len(serial)
        streamed[first[0]] = first[1]
        streamed.update(stream)
        assert streamed == serial

    def test_streamed_memo_deltas_warm_the_parent(self):
        distribution = hardcore_model(random_tree(14, seed=5), 1.2)
        instance = SamplingInstance(distribution, {0: 0})
        dict(
            stream_padded_ball_marginals(
                instance, instance.free_nodes, 2, n_workers=2
            )
        )
        cache = distribution.ball_cache()
        locality = distribution.locality()
        warmed = [
            cache._compiled[(node, 2 + locality)]
            for node in instance.free_nodes
            if (node, 2 + locality) in cache._compiled
        ]
        assert warmed and any(len(ball._marginal_memo) > 0 for ball in warmed)

    def test_failed_shard_surfaces_clean_error(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(8), 1.0))
        tasks = [(node, 1) for node in (0, 1)] + [("no-such-node", 1), (2, 1)]
        with pytest.raises(RuntimeError, match="ball shard failed"):
            list(
                stream_ball_marginal_tasks(
                    instance, tasks, n_workers=2, chunk_size=1
                )
            )

    def test_abandoning_the_stream_cancels_cleanly(self):
        distribution = coloring_model(cycle_graph(12), 3)
        instance = SamplingInstance(distribution, {0: 1})
        stream = stream_padded_ball_marginals(
            instance, instance.free_nodes, 2, n_workers=2, chunk_size=1
        )
        next(stream)
        stream.close()  # must not hang on the pending futures

    def test_map_unordered_process_covers_all_items(self):
        runtime = Runtime("process", n_workers=2)
        offset = 3
        results = sorted(runtime.map_unordered(lambda x: x + offset, range(6)))
        assert results == [(index, index + offset) for index in range(6)]

    def test_interleaved_map_unordered_does_not_pin_stale_task(self):
        from repro.runtime import shards

        runtime = Runtime("process", n_workers=2)
        first = runtime.map_unordered(lambda x: x + 1, range(3))
        next(first)
        second = runtime.map_unordered(lambda x: x + 2, range(3))
        next(second)
        list(first)
        list(second)
        assert shards._FORK_TASK is None

    def test_submit_process_backend(self):
        import math

        with Runtime("process", n_workers=2) as runtime:
            assert runtime.submit(math.sqrt, 16.0).result() == 4.0
            failing = runtime.submit(math.sqrt, -1.0)
            assert failing.exception() is not None

    def test_locality_required_overlapped_matches_serial(self):
        from repro.spatialmixing import locality_required

        distribution = hardcore_model(cycle_graph(12), fugacity=6.0)
        instance = SamplingInstance(distribution, {0: 1})
        serial = locality_required(instance, 6, error=0.05, max_radius=6)
        overlapped = locality_required(
            instance,
            6,
            error=0.05,
            max_radius=6,
            runtime=Runtime("process", n_workers=2),
        )
        assert overlapped == serial

    def test_marginals_stream_process_runtime(self):
        distribution = hardcore_model(random_tree(15, seed=8), 1.3)
        instance = SamplingInstance(distribution, {0: 0})
        engine = TruncatedBallInference(
            radius=2, runtime=Runtime("process", n_workers=2)
        )
        streamed = dict(engine.marginals_stream(instance, 0.05))
        assert streamed == TruncatedBallInference(radius=2).marginals(instance, 0.05)


class TestSharedMemoryTransport:
    """The zero-copy data plane (repro.runtime.shm): round-trip, fallback,
    and leak-proof lifetime -- after clean shutdown AND after a killed
    attacher."""

    def test_pack_roundtrip_reconstructs_every_descriptor(self):
        from repro.runtime import shm

        arrays = [
            np.arange(12, dtype=np.int64).reshape(3, 4),
            np.linspace(0.0, 1.0, 7),
            np.array([], dtype=np.float64),
        ]
        pack = shm.pack_arrays(arrays, label="test")
        if pack is None:
            pytest.skip("shared memory unavailable on this platform")
        try:
            assert len(pack.descriptors) == len(arrays)
            for index, array in enumerate(arrays):
                name, dtype, shape, offset = pack.descriptors[index]
                assert name == pack.name
                assert shape == array.shape
                assert offset % 64 == 0
                view = shm.attach_array(pack.descriptors[index])
                assert view.dtype == array.dtype
                assert np.array_equal(view, array)
                assert not view.flags.writeable  # shared input is read-only
            # Owner-allocated output matrices are the one writable case,
            # and writes land in the owner's own view (one segment).
            out = shm.attach_array(pack.descriptors[0], writable=True)
            out[0, 0] = 41
            assert pack.view(0)[0, 0] == 41
        finally:
            pack.release()
        assert pack.name not in shm.live_segment_names()
        assert shm.leaked_dev_shm_segments() == []

    def test_pickle_fallback_when_shared_memory_unavailable(self, monkeypatch):
        from repro.runtime import shm
        from repro.runtime.shards import _ShmSpec, _spec_wire

        monkeypatch.setattr(shm, "_availability", False)
        assert shm.pack_arrays([np.arange(4)]) is None
        instance = SamplingInstance(hardcore_model(cycle_graph(8), 1.0), {0: 1})
        spec = InstanceSpec.from_instance(instance)
        wire, pack = _spec_wire(spec, "shm")
        # Degraded wire form: the plain picklable spec, no segments.
        assert wire is spec and pack is None
        assert not isinstance(wire, _ShmSpec)
        assert shm.live_segment_names() == []

    def test_shm_spec_wire_restores_identical_spec(self):
        from repro.runtime import shm
        from repro.runtime.shards import _ShmSpec, _spec_wire

        instance = SamplingInstance(hardcore_model(random_tree(14, seed=4), 1.2), {0: 0})
        spec = InstanceSpec.from_instance(instance)
        wire, pack = _spec_wire(spec, "shm")
        if pack is None:
            pytest.skip("shared memory unavailable on this platform")
        try:
            assert isinstance(wire, _ShmSpec)
            clone = pickle.loads(pickle.dumps(wire)).restore()
            assert clone.nodes == spec.nodes
            assert all(
                np.array_equal(a, b) for a, b in zip(clone.arrays, spec.arrays)
            )
            node = instance.free_nodes[3]
            assert clone.padded_ball_marginal(node, 2) == spec.padded_ball_marginal(
                node, 2
            )
        finally:
            pack.release()
        assert shm.leaked_dev_shm_segments() == []

    def test_runtime_shutdown_releases_live_packs(self):
        from repro.runtime import shm

        pack = shm.pack_arrays([np.arange(6)], label="orphan")
        if pack is None:
            pytest.skip("shared memory unavailable on this platform")
        assert pack.name in shm.live_segment_names()
        runtime = Runtime("process", n_workers=2, transport="shm")
        runtime.shutdown()  # the safety net unlinks anything still live
        assert shm.live_segment_names() == []
        assert shm.leaked_dev_shm_segments() == []

    @pytest.mark.slow
    def test_killed_attacher_leaks_nothing(self):
        """A worker that dies mid-attachment must not unlink (or pin) the
        owner's segment: only the owner manages lifetime."""
        import signal
        import subprocess
        import sys

        from repro.runtime import shm

        pack = shm.pack_arrays([np.arange(32, dtype=np.int64)], label="kill-test")
        if pack is None:
            pytest.skip("shared memory unavailable on this platform")
        try:
            name, dtype, shape, offset = pack.descriptors[0]
            script = (
                "import os, signal\n"
                "from repro.runtime import shm\n"
                f"view = shm.attach_array(({name!r}, {dtype!r}, {tuple(shape)!r}, {offset}))\n"
                "assert view[5] == 5\n"
                "os.kill(os.getpid(), signal.SIGKILL)\n"
            )
            result = subprocess.run(
                [sys.executable, "-c", script],
                env={"PYTHONPATH": "src", "PATH": os.environ.get("PATH", "")},
                cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                capture_output=True,
            )
            assert result.returncode == -signal.SIGKILL, result.stderr.decode()
            # The kill dropped the attachment without unlinking: the owner
            # still reads its data, then releases cleanly.
            assert pack.view(0)[5] == 5
        finally:
            pack.release()
        assert shm.leaked_dev_shm_segments() == []

    @pytest.mark.slow
    def test_chain_blocks_shm_transport_matches_pickle(self):
        from repro.runtime import run_chain_blocks, shm
        from repro.runtime.chains import chain_seed_sequences as spawn

        instance = SamplingInstance(hardcore_model(cycle_graph(9), 1.2), {0: 1})
        seeds = spawn(5, 4)
        pickled = run_chain_blocks(
            instance, "glauber", 60, seeds, n_workers=2, transport="pickle"
        )
        shared = run_chain_blocks(
            instance, "glauber", 60, seeds, n_workers=2, transport="shm"
        )
        assert shared == pickled
        assert shm.live_segment_names() == []
        assert shm.leaked_dev_shm_segments() == []


class TestAdaptiveDispatchGuard:
    """Small process-backend chain workloads run in-process (satellite)."""

    def test_small_workload_inlines_and_stays_bit_identical(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(8), 1.2), {0: 1})
        runtime = Runtime("process", n_chains=3, n_workers=2)
        states = runtime.run_chains("glauber", instance, 40, seed=6)
        assert states == Runtime("serial", n_chains=3).run_chains(
            "glauber", instance, 40, seed=6
        )
        # The guard never spun the pool up (3 * 40 updates << threshold).
        assert runtime._pool is None

    def test_threshold_zero_disables_the_guard(self):
        runtime = Runtime("process", n_workers=2, inline_threshold=0)
        assert runtime.inline_threshold == 0
        with pytest.raises(ValueError):
            Runtime("process", inline_threshold=-1)

    def test_inline_dispatch_emits_the_obs_instant(self):
        from repro import obs

        instance = SamplingInstance(hardcore_model(cycle_graph(8), 1.2), {0: 1})
        obs.enable()
        try:
            Runtime("process", n_chains=2, n_workers=2).run_chains(
                "glauber", instance, 10, seed=1
            )
            instants = [
                event
                for event in obs.events()
                if event.get("name") == "runtime.dispatch.inline"
            ]
            assert instants and instants[-1]["attrs"]["chains"] == 2
        finally:
            obs.disable()


class TestRuntimeShutdownSafety:
    """Shutdown is idempotent, thread-safe, and event-loop safe.

    The serving layer's drain path calls ``Runtime.shutdown()`` from an
    asyncio event-loop thread; blocking the loop on worker joins there
    would stall every in-flight response.
    """

    def test_shutdown_from_an_event_loop_is_non_blocking_and_reusable(self):
        import asyncio
        import math

        runtime = Runtime("process", n_workers=2)
        assert runtime.submit(math.sqrt, 4.0).result() == 2.0

        async def drain():
            runtime.shutdown()  # wait defaults to False inside a loop

        asyncio.run(drain())
        assert runtime._pool is None
        # A later operation transparently recreates the pool.
        with runtime:
            assert runtime.submit(math.sqrt, 9.0).result() == 3.0

    def test_shutdown_racing_in_flight_map_unordered_neither_hangs_nor_leaks(self):
        import asyncio
        import threading

        from repro.runtime import shards

        runtime = Runtime("process", n_workers=2)
        stream = runtime.map_unordered(lambda x: x * x, range(8))
        next(stream)  # the stream is live: its fork pool is mid-flight

        async def drain():
            runtime.shutdown()

        worker = threading.Thread(target=lambda: asyncio.run(drain()), daemon=True)
        worker.start()
        worker.join(timeout=30)
        assert not worker.is_alive(), "shutdown hung inside the event loop"
        stream.close()  # the abandoned stream's own pool terminates cleanly
        assert shards._FORK_TASK is None
        with runtime:
            results = sorted(runtime.map_unordered(lambda x: x + 1, range(4)))
            assert results == [(index, index + 1) for index in range(4)]

    def test_concurrent_shutdowns_release_each_resource_exactly_once(self):
        import math
        import threading

        runtime = Runtime("process", n_workers=2)
        assert runtime.submit(math.sqrt, 16.0).result() == 4.0
        errors = []

        def call():
            try:
                runtime.shutdown(wait=True)
            except Exception as error:  # pragma: no cover - the failure we test for
                errors.append(error)

        threads = [threading.Thread(target=call) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert runtime._pool is None

    def test_snapshot_sections_register_and_unregister(self):
        runtime = Runtime("batched", n_chains=2)
        runtime.register_snapshot_section("serve", lambda: {"outstanding": 0})
        assert runtime.snapshot()["serve"] == {"outstanding": 0}
        runtime.register_snapshot_section("broken", lambda: 1 / 0)
        snapshot = runtime.snapshot()
        assert "ZeroDivisionError" in snapshot["broken"]["error"]
        runtime.unregister_snapshot_section("serve")
        runtime.unregister_snapshot_section("broken")
        assert "serve" not in runtime.snapshot()


class TestKernelRunChains:
    """The unified kernel execution path (ISSUE 5 acceptance contract).

    The full kernel x backend bit-identity matrix lives in the parametrized
    conformance harness (``tests/test_conformance.py``); this class keeps
    the path's API semantics (kernel resolution, engine degradation,
    deprecated wrappers, chain-block task bodies).
    """

    def _instance(self):
        return SamplingInstance(hardcore_model(cycle_graph(8), 1.2), {0: 1})

    def test_run_chains_accepts_kernel_instances_and_rejects_unknown_names(self):
        from repro.sampling import get_kernel

        instance = self._instance()
        runtime = Runtime("batched", n_chains=2)
        kernel = get_kernel("glauber")
        assert runtime.run_chains(kernel, instance, 9, seed=1) == runtime.run_chains(
            "glauber", instance, 9, seed=1
        )
        with pytest.raises(ValueError, match="unknown chain kernel"):
            runtime.run_chains("no-such-kernel", instance, 1)

    def test_run_chains_dict_engine_uses_serial_reference(self):
        instance = self._instance()
        reference = [
            glauber_sample(instance, 10, seed=seed, engine="dict")
            for seed in chain_seed_sequences(2, 3)
        ]
        assert (
            Runtime("serial", n_chains=3).run_chains(
                "glauber", instance, 10, seed=2, engine="dict"
            )
            == reference
        )

    def test_backcompat_wrappers_deprecate_but_delegate(self):
        instance = self._instance()
        runtime = Runtime("batched", n_chains=3)
        with pytest.deprecated_call():
            old_glauber = runtime.glauber_sample(instance, 20, seed=5)
        assert old_glauber == runtime.run_chains("glauber", instance, 20, seed=5)
        with pytest.deprecated_call():
            old_luby = runtime.luby_glauber_sample(instance, 6, seed=5)
        assert old_luby == runtime.run_chains("luby-glauber", instance, 6, seed=5)

    def test_chain_batch_advance_claims_one_kernel(self):
        instance = self._instance()
        batch = ChainBatch(instance, n_chains=2, seed=0)
        batch.advance("jvv", 4)
        with pytest.raises(RuntimeError, match="fresh batch"):
            batch.advance("sequential", 4)

    def test_generic_statistic_traces(self):
        instance = self._instance()
        batch = ChainBatch(instance, n_chains=3, seed=1)
        traces = batch.advance(
            "sequential", 8, statistic=lambda codes: codes.mean(axis=1)
        )
        assert traces.shape == (3, 8)

    def test_chain_block_task_registered(self):
        from repro.runtime import TASK_REGISTRY

        assert {"ball_marginals", "compile_balls", "chain_block"} <= set(TASK_REGISTRY)

    def test_chain_block_body_matches_serial(self):
        from repro.runtime.shards import _chain_block_task
        from repro.sampling import get_kernel

        instance = self._instance()
        seeds = chain_seed_sequences(6, 3)
        spec = InstanceSpec.from_instance(instance)
        payload = {"kernel": "jvv", "count": 13, "seeds": seeds, "initial": None}
        kernel = get_kernel("jvv")
        assert _chain_block_task(payload, spec=spec) == [
            kernel.serial_run(instance, 13, seed=seed) for seed in seeds
        ]

    def test_chain_block_accepts_legacy_kind_payloads(self):
        from repro.runtime.shards import _chain_block_task

        instance = self._instance()
        seeds = chain_seed_sequences(8, 2)
        spec = InstanceSpec.from_instance(instance)
        legacy = {"kind": "luby", "count": 5, "seeds": seeds, "initial": None}
        assert _chain_block_task(legacy, spec=spec) == [
            luby_glauber_sample(instance, 5, seed=seed) for seed in seeds
        ]


class TestRunChainsState:
    """Resumable chain state (ISSUE 9 satellite): split runs == one run... per layout."""

    def _instance(self):
        return SamplingInstance(hardcore_model(cycle_graph(8), 1.2), {0: 1})

    @pytest.mark.parametrize("backend", ["serial", "batched"])
    def test_return_state_run_matches_plain_run(self, backend):
        instance = self._instance()
        runtime = Runtime(backend, n_chains=3)
        plain = runtime.run_chains("glauber", instance, 25, seed=7)
        states, state = runtime.run_chains(
            "glauber", instance, 25, seed=7, return_state=True
        )
        assert states == plain
        assert state.n_chains == 3
        assert state.units == 25
        assert state.kernel_name == "glauber"

    def test_split_resume_identical_across_layouts(self):
        instance = self._instance()
        serial = Runtime("serial", n_chains=4)
        batched = Runtime("batched", n_chains=4)
        first_s, state_s = serial.run_chains(
            "glauber", instance, 20, seed=3, return_state=True
        )
        first_b, state_b = batched.run_chains(
            "glauber", instance, 20, seed=3, return_state=True
        )
        assert first_s == first_b
        assert state_s.layout == "serial"
        assert state_b.layout == "batched"
        second_s = serial.run_chains("glauber", instance, 20, state=state_s)
        second_b = batched.run_chains("glauber", instance, 20, state=state_b)
        assert second_s == second_b
        assert state_s.units == state_b.units == 40

    def test_state_retargets_onto_reweighted_model(self):
        graph = cycle_graph(8)
        runtime = Runtime("batched", n_chains=2)
        cold = SamplingInstance(hardcore_model(graph, 1.2), {0: 1})
        hot = SamplingInstance(hardcore_model(graph, 2.0), {0: 1})
        _, state = runtime.run_chains("glauber", cold, 10, seed=0, return_state=True)
        resumed = runtime.run_chains("glauber", hot, 10, state=state)
        assert len(resumed) == 2
        for configuration in resumed:
            assert configuration[0] == 1

    def test_state_rejects_kernel_change_and_seed_overrides(self):
        instance = self._instance()
        runtime = Runtime("batched", n_chains=2)
        _, state = runtime.run_chains("glauber", instance, 5, seed=1, return_state=True)
        with pytest.raises(ValueError, match="kernel"):
            runtime.run_chains("sequential", instance, 5, state=state)
        with pytest.raises(ValueError, match="state"):
            runtime.run_chains(
                "glauber",
                instance,
                5,
                seeds=chain_seed_sequences(9, 2),
                state=state,
            )
        with pytest.raises(ValueError, match="state"):
            runtime.run_chains("glauber", instance, 5, init="greedy", state=state)

    def test_stateful_paths_need_local_compiled_backend(self):
        instance = self._instance()
        with pytest.raises(ValueError, match="serial or batched"):
            Runtime("process", n_chains=2).run_chains(
                "glauber", instance, 5, return_state=True
            )
        with pytest.raises(ValueError, match="compiled"):
            Runtime("serial", n_chains=2).run_chains(
                "glauber", instance, 5, engine="dict", return_state=True
            )


class TestGreedyInit:
    """``init="greedy"`` warm starts (ISSUE 9 satellite)."""

    def _instance(self):
        return SamplingInstance(hardcore_model(cycle_graph(8), 1.2), {0: 1})

    def test_greedy_init_equals_explicit_warm_start(self):
        from repro.sampling.glauber import warm_start_configuration

        instance = self._instance()
        warm = warm_start_configuration(instance)
        for backend in ("serial", "batched"):
            runtime = Runtime(backend, n_chains=3)
            assert runtime.run_chains(
                "glauber", instance, 15, seed=2, init="greedy"
            ) == runtime.run_chains("glauber", instance, 15, seed=2, initial=warm)

    def test_warm_start_is_deterministic_feasible_and_rng_free(self):
        from repro.sampling.glauber import warm_start_configuration

        instance = self._instance()
        warm = warm_start_configuration(instance)
        assert warm == warm_start_configuration(instance)
        assert warm[0] == 1  # respects the pinning
        compiled = instance.distribution.compiled_engine()
        assert compiled.configuration_weight(warm) > 0
        assert warm == warm_start_configuration(instance, engine="dict")

    def test_greedy_init_rejects_explicit_initial(self):
        instance = self._instance()
        runtime = Runtime("batched", n_chains=2)
        with pytest.raises(ValueError, match="init"):
            runtime.run_chains(
                "glauber", instance, 5, init="greedy", initial={0: 1}
            )
        with pytest.raises(ValueError, match="init"):
            runtime.run_chains("glauber", instance, 5, init="no-such-init")
