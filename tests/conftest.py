"""Shared fixtures and helpers for the test suite.

Ground truth throughout is brute-force enumeration / variable elimination,
so all fixture instances are small enough to enumerate exactly.
"""

from __future__ import annotations

import itertools
from typing import Dict

import pytest

from repro.gibbs import GibbsDistribution, SamplingInstance
from repro.graphs import cycle_graph, path_graph, star_graph
from repro.models import coloring_model, hardcore_model, matching_model, two_spin_model


def brute_force_partition_function(distribution: GibbsDistribution, pinning=None) -> float:
    """Partition function by direct enumeration (independent of the library's own)."""
    pinning = dict(pinning or {})
    nodes = distribution.nodes
    free = [node for node in nodes if node not in pinning]
    total = 0.0
    for values in itertools.product(distribution.alphabet, repeat=len(free)):
        configuration = dict(pinning)
        configuration.update(zip(free, values))
        total += distribution.weight(configuration)
    return total


def brute_force_marginal(distribution: GibbsDistribution, node, pinning=None) -> Dict:
    """Single-node marginal by direct enumeration."""
    pinning = dict(pinning or {})
    weights = {}
    for value in distribution.alphabet:
        extended = dict(pinning)
        extended[node] = value
        weights[value] = brute_force_partition_function(distribution, extended)
    total = sum(weights.values())
    return {value: weight / total for value, weight in weights.items()}


@pytest.fixture
def hardcore_cycle():
    """Hardcore model on a 6-cycle, below the uniqueness threshold."""
    return hardcore_model(cycle_graph(6), fugacity=0.8)


@pytest.fixture
def hardcore_path():
    """Hardcore model on a 5-path."""
    return hardcore_model(path_graph(5), fugacity=1.0)


@pytest.fixture
def coloring_cycle():
    """Uniform proper 3-colorings of a 5-cycle (locally admissible: q = Delta + 1)."""
    return coloring_model(cycle_graph(5), num_colors=3)


@pytest.fixture
def ising_path():
    """Soft anti-ferromagnetic two-spin model on a 4-path."""
    return two_spin_model(path_graph(4), beta=0.4, gamma=0.7, field=1.2)


@pytest.fixture
def matching_path():
    """Monomer--dimer model of a 5-path (line graph is a 4-path)."""
    return matching_model(path_graph(5), edge_weight=1.0)


@pytest.fixture
def hardcore_instance(hardcore_cycle):
    """Unpinned hardcore instance."""
    return SamplingInstance(hardcore_cycle)


@pytest.fixture
def pinned_hardcore_instance(hardcore_cycle):
    """Hardcore instance with one node pinned occupied and one pinned empty."""
    return SamplingInstance(hardcore_cycle, {0: 1, 3: 0})


@pytest.fixture
def coloring_instance(coloring_cycle):
    """Coloring instance with one node pinned."""
    return SamplingInstance(coloring_cycle, {0: 2})


# ----------------------------------------------------------------------
# kernel x backend conformance harness
# ----------------------------------------------------------------------
#
# THE cross-backend bit-identity contract in one place: every registered
# ChainKernel, on every Runtime backend, equals the kernel's own
# ``serial_run`` per spawned seed (``tests/test_conformance.py``).  Adding
# a kernel (register_kernel) or a backend (extend the fixture params)
# grows the matrix automatically -- no new test code.  The cluster leg
# spins up two real TCP workers per test, so it rides behind the ``slow``
# marker like the other subprocess-heavy tests.

#: Chains per conformance run (enough to exercise block splitting on the
#: distributed backends, which chunk seeds across 2 workers).
CONFORMANCE_CHAINS = 4


def serial_chain_reference(kernel_name, instance, count, seed=0, n_chains=CONFORMANCE_CHAINS):
    """The reference result: the kernel's serial_run per spawned seed."""
    from repro.runtime import chain_seed_sequences
    from repro.sampling import get_kernel

    kernel = get_kernel(kernel_name)
    return [
        kernel.serial_run(instance, count, seed=chain_seed)
        for chain_seed in chain_seed_sequences(seed, n_chains)
    ]


@pytest.fixture(scope="session")
def conformance_chains():
    """Chains per conformance run (importable only as a fixture: a bare
    ``from conftest import ...`` is ambiguous when pytest collects the
    whole repo, since ``benchmarks/`` has a conftest too)."""
    return CONFORMANCE_CHAINS


@pytest.fixture(scope="session")
def serial_reference():
    """The :func:`serial_chain_reference` helper, as a fixture."""
    return serial_chain_reference


@pytest.fixture(
    params=[
        "serial",
        "batched",
        "process",
        pytest.param("process-shm", marks=pytest.mark.slow),
        pytest.param("cluster", marks=pytest.mark.slow),
    ]
)
def conformance_runtime(request):
    """One Runtime per backend of the conformance matrix (torn down clean).

    ``process`` uses a 2-worker pool (``inline_threshold=0`` so the small
    conformance workloads exercise the real pool dispatch, not the
    adaptive in-process guard); ``process-shm`` is the same pool over the
    shared-memory transport; ``cluster`` serves two real TCP workers from
    daemon threads (the in-process idiom of ``tests/test_cluster.py``).
    """
    import threading

    from repro.runtime import Runtime

    backend = request.param
    if backend == "cluster":
        from repro.cluster.worker import ClusterWorker

        workers = [ClusterWorker() for _ in range(2)]
        for worker in workers:
            threading.Thread(target=worker.serve_forever, daemon=True).start()
        runtime = Runtime(
            "cluster",
            n_chains=CONFORMANCE_CHAINS,
            addresses=[worker.address for worker in workers],
        )
        try:
            yield runtime
        finally:
            runtime.shutdown()
            for worker in workers:
                worker.close()
    elif backend in ("process", "process-shm"):
        with Runtime(
            "process",
            n_chains=CONFORMANCE_CHAINS,
            n_workers=2,
            transport="shm" if backend == "process-shm" else None,
            inline_threshold=0,
        ) as runtime:
            yield runtime
    else:
        yield Runtime(backend, n_chains=CONFORMANCE_CHAINS)
