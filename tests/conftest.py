"""Shared fixtures and helpers for the test suite.

Ground truth throughout is brute-force enumeration / variable elimination,
so all fixture instances are small enough to enumerate exactly.
"""

from __future__ import annotations

import itertools
from typing import Dict

import pytest

from repro.gibbs import GibbsDistribution, SamplingInstance
from repro.graphs import cycle_graph, path_graph, star_graph
from repro.models import coloring_model, hardcore_model, matching_model, two_spin_model


def brute_force_partition_function(distribution: GibbsDistribution, pinning=None) -> float:
    """Partition function by direct enumeration (independent of the library's own)."""
    pinning = dict(pinning or {})
    nodes = distribution.nodes
    free = [node for node in nodes if node not in pinning]
    total = 0.0
    for values in itertools.product(distribution.alphabet, repeat=len(free)):
        configuration = dict(pinning)
        configuration.update(zip(free, values))
        total += distribution.weight(configuration)
    return total


def brute_force_marginal(distribution: GibbsDistribution, node, pinning=None) -> Dict:
    """Single-node marginal by direct enumeration."""
    pinning = dict(pinning or {})
    weights = {}
    for value in distribution.alphabet:
        extended = dict(pinning)
        extended[node] = value
        weights[value] = brute_force_partition_function(distribution, extended)
    total = sum(weights.values())
    return {value: weight / total for value, weight in weights.items()}


@pytest.fixture
def hardcore_cycle():
    """Hardcore model on a 6-cycle, below the uniqueness threshold."""
    return hardcore_model(cycle_graph(6), fugacity=0.8)


@pytest.fixture
def hardcore_path():
    """Hardcore model on a 5-path."""
    return hardcore_model(path_graph(5), fugacity=1.0)


@pytest.fixture
def coloring_cycle():
    """Uniform proper 3-colorings of a 5-cycle (locally admissible: q = Delta + 1)."""
    return coloring_model(cycle_graph(5), num_colors=3)


@pytest.fixture
def ising_path():
    """Soft anti-ferromagnetic two-spin model on a 4-path."""
    return two_spin_model(path_graph(4), beta=0.4, gamma=0.7, field=1.2)


@pytest.fixture
def matching_path():
    """Monomer--dimer model of a 5-path (line graph is a 4-path)."""
    return matching_model(path_graph(5), edge_weight=1.0)


@pytest.fixture
def hardcore_instance(hardcore_cycle):
    """Unpinned hardcore instance."""
    return SamplingInstance(hardcore_cycle)


@pytest.fixture
def pinned_hardcore_instance(hardcore_cycle):
    """Hardcore instance with one node pinned occupied and one pinned empty."""
    return SamplingInstance(hardcore_cycle, {0: 1, 3: 0})


@pytest.fixture
def coloring_instance(coloring_cycle):
    """Coloring instance with one node pinned."""
    return SamplingInstance(coloring_cycle, {0: 2})
