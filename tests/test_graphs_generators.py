"""Unit tests for the reproducible graph generators."""

import networkx as nx
import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    is_triangle_free,
    path_graph,
    random_bipartite_regular_graph,
    random_regular_graph,
    random_tree,
    star_graph,
    torus_graph,
)
from repro.graphs.generators import all_connected_graphs


class TestDeterministicGenerators:
    def test_path_and_cycle_sizes(self):
        assert path_graph(5).number_of_edges() == 4
        assert cycle_graph(5).number_of_edges() == 5

    def test_cycle_requires_three_nodes(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star_and_complete(self):
        assert star_graph(4).number_of_edges() == 4
        assert complete_graph(4).number_of_edges() == 6

    def test_grid_and_torus_degrees(self):
        grid = grid_graph(3, 4)
        assert grid.number_of_nodes() == 12
        torus = torus_graph(3, 3)
        assert all(degree == 4 for _, degree in torus.degree())

    def test_torus_minimum_size(self):
        with pytest.raises(ValueError):
            torus_graph(2, 5)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            path_graph(0)


class TestRandomGenerators:
    def test_random_tree_is_a_tree(self):
        tree = random_tree(12, seed=3)
        assert nx.is_tree(tree)
        assert tree.number_of_nodes() == 12

    def test_random_tree_reproducible(self):
        assert set(random_tree(10, seed=5).edges()) == set(random_tree(10, seed=5).edges())

    def test_random_regular_graph_degrees(self):
        graph = random_regular_graph(3, 10, seed=1)
        assert all(degree == 3 for _, degree in graph.degree())

    def test_random_regular_parity_check(self):
        with pytest.raises(ValueError):
            random_regular_graph(3, 5, seed=0)

    def test_erdos_renyi_bounds(self):
        graph = erdos_renyi_graph(20, 0.2, seed=7)
        assert graph.number_of_nodes() == 20
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_bipartite_regular_graph(self):
        graph = random_bipartite_regular_graph(3, 6, seed=2)
        assert graph.number_of_nodes() == 12
        assert all(degree == 3 for _, degree in graph.degree())
        assert is_triangle_free(graph)

    def test_bipartite_regular_invalid_degree(self):
        with pytest.raises(ValueError):
            random_bipartite_regular_graph(7, 6)


class TestTriangleFree:
    def test_cycle_parity(self):
        assert is_triangle_free(cycle_graph(4))
        assert not is_triangle_free(cycle_graph(3))

    def test_complete_graph_has_triangles(self):
        assert not is_triangle_free(complete_graph(4))

    def test_trees_are_triangle_free(self):
        assert is_triangle_free(random_tree(15, seed=0))


class TestExhaustiveEnumeration:
    def test_connected_graph_counts(self):
        # Known counts of connected labelled graphs on n nodes: 1, 1, 4, 38.
        assert sum(1 for _ in all_connected_graphs(1)) == 1
        assert sum(1 for _ in all_connected_graphs(2)) == 1
        assert sum(1 for _ in all_connected_graphs(3)) == 4
        assert sum(1 for _ in all_connected_graphs(4)) == 38

    def test_enumeration_size_limit(self):
        with pytest.raises(ValueError):
            list(all_connected_graphs(6))
