"""Unit tests for proper colorings and list-colorings."""

import pytest

from repro.graphs import cycle_graph, path_graph, star_graph
from repro.models import ALPHA_STAR, coloring_model, list_coloring_model


class TestColoringModel:
    def test_counts_proper_colorings_of_path(self):
        # Proper q-colorings of a path P_n: q * (q-1)^(n-1).
        distribution = coloring_model(path_graph(4), num_colors=3)
        assert distribution.partition_function() == pytest.approx(3 * 2 ** 3)

    def test_counts_proper_colorings_of_cycle(self):
        distribution = coloring_model(cycle_graph(4), num_colors=3)
        assert distribution.partition_function() == pytest.approx(2 ** 4 + 2)

    def test_all_support_configurations_are_proper(self):
        distribution = coloring_model(cycle_graph(4), num_colors=3)
        for configuration in distribution.support():
            for u, v in distribution.graph.edges():
                assert configuration[u] != configuration[v]

    def test_needs_at_least_one_color(self):
        with pytest.raises(ValueError):
            coloring_model(path_graph(2), num_colors=0)

    def test_local_admissibility_flag(self):
        assert coloring_model(cycle_graph(5), num_colors=3).metadata["locally_admissible"]
        assert not coloring_model(star_graph(4), num_colors=3).metadata["locally_admissible"]

    def test_ssm_regime_flag_triangle_free(self):
        # A cycle of length >= 4 is triangle-free with Delta = 2: q = 4 colors
        # exceeds alpha* * 2 ~ 3.52, so the flag should be set.
        in_regime = coloring_model(cycle_graph(6), num_colors=4)
        out_of_regime = coloring_model(cycle_graph(6), num_colors=3)
        assert in_regime.metadata["ssm_regime"] is True
        assert out_of_regime.metadata["ssm_regime"] is False
        assert 1.7 < ALPHA_STAR < 1.8

    def test_marginal_uniform_by_symmetry(self):
        distribution = coloring_model(cycle_graph(5), num_colors=3)
        marginal = distribution.marginal(0)
        for probability in marginal.values():
            assert probability == pytest.approx(1.0 / 3.0)


class TestListColoringModel:
    def test_self_reduction_from_coloring(self):
        # Pinning node 0 of a 3-coloring of a path is the same distribution
        # as the list-coloring where the neighbours lose that color.
        base = coloring_model(path_graph(3), num_colors=3)
        pinned_marginal = base.marginal(1, {0: 2})
        lists = {0: [2], 1: [0, 1, 2], 2: [0, 1, 2]}
        reduced = list_coloring_model(path_graph(3), lists)
        reduced_marginal = reduced.marginal(1, {0: 2})
        for value in (0, 1, 2):
            assert reduced_marginal[value] == pytest.approx(pinned_marginal[value])

    def test_missing_list_rejected(self):
        with pytest.raises(ValueError):
            list_coloring_model(path_graph(3), {0: [0], 1: [1]})

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            list_coloring_model(path_graph(2), {0: [], 1: [0]})

    def test_support_respects_lists(self):
        lists = {0: [0, 1], 1: [1, 2], 2: [0, 2]}
        distribution = list_coloring_model(path_graph(3), lists)
        for configuration in distribution.support():
            for node, colors in lists.items():
                assert configuration[node] in colors

    def test_admissibility_requires_degree_plus_one(self):
        ample = list_coloring_model(path_graph(3), {0: [0, 1], 1: [0, 1, 2], 2: [1, 2]})
        tight = list_coloring_model(path_graph(3), {0: [0], 1: [0, 1], 2: [1]})
        assert ample.metadata["locally_admissible"] is True
        assert tight.metadata["locally_admissible"] is False
