"""Tests for the high-level LocalSamplingProblem API."""

import pytest

from repro.analysis import total_variation
from repro.core import LocalSamplingProblem
from repro.graphs import cycle_graph, path_graph
from repro.inference import (
    BeliefPropagationInference,
    BoundaryPaddedInference,
    ExactInference,
    TwoSpinCorrelationDecayInference,
)
from repro.models import coloring_model, hardcore_model, ising_model, matching_model


class TestEngineSelection:
    def test_hardcore_gets_correlation_decay(self):
        problem = LocalSamplingProblem(hardcore_model(cycle_graph(6), fugacity=0.8))
        assert isinstance(problem.inference_engine, TwoSpinCorrelationDecayInference)

    def test_matching_gets_correlation_decay(self):
        problem = LocalSamplingProblem(matching_model(path_graph(5)))
        assert isinstance(problem.inference_engine, TwoSpinCorrelationDecayInference)

    def test_coloring_gets_belief_propagation(self):
        problem = LocalSamplingProblem(coloring_model(cycle_graph(5), 3))
        assert isinstance(problem.inference_engine, BeliefPropagationInference)

    def test_ising_gets_correlation_decay(self):
        problem = LocalSamplingProblem(ising_model(cycle_graph(6), interaction=0.2))
        assert isinstance(problem.inference_engine, TwoSpinCorrelationDecayInference)

    def test_explicit_engine_override(self):
        engine = ExactInference()
        problem = LocalSamplingProblem(hardcore_model(path_graph(4)), inference=engine)
        assert problem.inference_engine is engine

    def test_generic_pairwise_model_falls_back_to_bp(self):
        from repro.gibbs import Factor, GibbsDistribution

        graph = path_graph(3)
        factors = [Factor((u, v), lambda a, b: 1.0 + a * b) for u, v in graph.edges()]
        generic = GibbsDistribution(graph, (0, 1), factors, name="generic")
        problem = LocalSamplingProblem(generic)
        assert isinstance(problem.inference_engine, BeliefPropagationInference)


class TestProblemOperations:
    def test_infer_reports_rounds_and_accurate_marginals(self):
        distribution = hardcore_model(cycle_graph(8), fugacity=0.8)
        problem = LocalSamplingProblem(distribution, pinning={0: 1}, seed=1)
        report = problem.infer(error=0.05)
        assert report.rounds >= 1
        assert set(report.marginals) == set(problem.instance.free_nodes)
        for node, marginal in report.marginals.items():
            assert total_variation(marginal, problem.exact_marginal(node)) <= 0.05

    def test_sample_respects_pinning_and_feasibility(self):
        distribution = coloring_model(cycle_graph(6), 3)
        problem = LocalSamplingProblem(distribution, pinning={0: 2}, seed=4)
        result = problem.sample(error=0.1)
        assert result.configuration[0] == 2
        assert distribution.weight(result.configuration) > 0

    def test_sample_exact_produces_feasible_output(self):
        distribution = hardcore_model(cycle_graph(6), fugacity=1.0)
        problem = LocalSamplingProblem(distribution, seed=2)
        result = problem.sample_exact()
        assert distribution.weight(result.configuration) > 0
        assert result.rounds > 0

    def test_conditioned_returns_reduced_problem(self):
        distribution = hardcore_model(cycle_graph(6), fugacity=1.0)
        problem = LocalSamplingProblem(distribution, pinning={0: 1})
        reduced = problem.conditioned({3: 0})
        assert dict(reduced.instance.pinning) == {0: 1, 3: 0}
        assert reduced.inference_engine is problem.inference_engine

    def test_seed_controls_reproducibility(self):
        distribution = hardcore_model(cycle_graph(7), fugacity=1.0)
        first = LocalSamplingProblem(distribution, seed=11).sample(0.1)
        second = LocalSamplingProblem(distribution, seed=11).sample(0.1)
        third = LocalSamplingProblem(distribution, seed=12).sample(0.1)
        assert first.configuration == second.configuration
        assert first.configuration != third.configuration or True  # may coincide

    def test_slocal_mode(self):
        distribution = hardcore_model(cycle_graph(6), fugacity=1.0)
        problem = LocalSamplingProblem(distribution, seed=0)
        slocal = problem.sample(error=0.1, local=False)
        local = problem.sample(error=0.1, local=True)
        assert slocal.rounds < local.rounds
