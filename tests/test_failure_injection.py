"""Failure-injection tests.

The paper's algorithms are Las Vegas: failures must be locally certifiable
and must not corrupt the output of the non-failed nodes.  These tests inject
faults -- degenerate network decompositions, deliberately wrong inference
engines, adversarial orderings -- and check that the failure machinery reacts
the way the model requires (flags raised, exceptions for contract violations,
no silent wrong answers).
"""

import pytest

from repro.analysis import total_variation
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.inference import ExactInference
from repro.inference.base import InferenceAlgorithm
from repro.localmodel import Network, linial_saks_decomposition, simulate_slocal_as_local
from repro.models import coloring_model, hardcore_model
from repro.sampling import sample_approximate_slocal, sample_exact_slocal
from repro.sampling.jvv import LocalJVVSampler
from repro.sampling.sequential import SequentialSamplingAlgorithm


class UniformGuessInference(InferenceAlgorithm):
    """A deliberately wrong engine: always returns the uniform distribution."""

    def locality(self, instance, error):
        return 1

    def marginal(self, instance, node, error):
        if node in instance.pinning:
            pinned = instance.pinning[node]
            return {v: (1.0 if v == pinned else 0.0) for v in instance.alphabet}
        q = len(instance.alphabet)
        return {value: 1.0 / q for value in instance.alphabet}


class ZeroEverywhereInference(InferenceAlgorithm):
    """A broken engine that violates the positive-marginal contract."""

    def locality(self, instance, error):
        return 1

    def marginal(self, instance, node, error):
        return {value: 0.0 for value in instance.alphabet}


class TestSchedulerFailureInjection:
    def test_degenerate_decomposition_marks_every_node_failed(self):
        distribution = hardcore_model(cycle_graph(8), fugacity=1.0)
        instance = SamplingInstance(distribution)
        algorithm = SequentialSamplingAlgorithm(instance, ExactInference(), 0.1)
        network = Network(instance.graph, seed=0)
        locality = algorithm.locality(network)
        from repro.graphs.structure import power_graph

        degenerate = linial_saks_decomposition(
            power_graph(network.graph, locality + 1), seed=0, max_phases=0
        )
        result = simulate_slocal_as_local(algorithm, network, seed=0, decomposition=degenerate)
        # Every node is in a fallback cluster => every node carries the
        # scheduling failure flag, yet the outputs that were produced are
        # still a feasible configuration (failures are independent of outputs).
        assert all(result.scheduling_failures.values())
        assert not result.success
        assert distribution.weight(result.outputs) > 0


class TestSamplerFailureInjection:
    def test_jvv_with_wrong_inference_flags_failures_not_crashes(self):
        # The uniform-guess engine proposes infeasible values; the JVV passes
        # must recover by flagging local failures while keeping the final
        # configuration feasible (the rejection pass repairs the ball).
        distribution = hardcore_model(cycle_graph(6), fugacity=1.0)
        instance = SamplingInstance(distribution)
        failures_seen = 0
        for seed in range(12):
            result = sample_exact_slocal(instance, UniformGuessInference(), seed=seed)
            failures_seen += result.failure_count
        assert failures_seen > 0

    def test_jvv_with_zero_marginals_raises_clear_error(self):
        distribution = hardcore_model(path_graph(4), fugacity=1.0)
        instance = SamplingInstance(distribution)
        with pytest.raises(RuntimeError):
            sample_exact_slocal(instance, ZeroEverywhereInference(), seed=0)

    def test_wrong_engine_biases_sequential_sampler_detectably(self):
        # Sanity check that our statistical tests have teeth: the sampler
        # driven by a deliberately wrong engine produces per-node marginals
        # far from the target, unlike the correct engine.  At fugacity 0.1
        # the true occupation probability is ~0.08 while the uniform-guess
        # engine samples ~0.5, a gap far above the Monte-Carlo noise.
        distribution = hardcore_model(path_graph(4), fugacity=0.1)
        instance = SamplingInstance(distribution)
        truth = instance.target_marginal(1)
        runs = 150
        wrong_counts = {0: 0, 1: 0}
        for seed in range(runs):
            result = sample_approximate_slocal(instance, UniformGuessInference(), 0.05, seed=seed)
            wrong_counts[result.configuration[1]] += 1
        wrong_marginal = {v: c / runs for v, c in wrong_counts.items()}
        assert total_variation(wrong_marginal, truth) > 0.2

    def test_jvv_rejection_search_budget_exhaustion_is_a_local_failure(self):
        # Force the rejection pass's candidate search to give up immediately:
        # the node must flag a failure rather than loop or crash.
        distribution = coloring_model(cycle_graph(5), num_colors=3)
        instance = SamplingInstance(distribution)
        algorithm = LocalJVVSampler(
            instance, UniformGuessInference(), max_rejection_candidates=0
        )
        from repro.localmodel import run_slocal_algorithm

        network = Network(instance.graph, seed=1)
        result = run_slocal_algorithm(algorithm, network)
        assert any(result.failures.values())


class TestAdversarialOrderings:
    def test_sequential_sampler_is_exact_for_every_ordering(self):
        # With an exact oracle the sampler is exact regardless of the
        # adversarial ordering; check a node marginal under two very
        # different orderings.
        distribution = hardcore_model(cycle_graph(6), fugacity=1.5)
        instance = SamplingInstance(distribution)
        truth = instance.target_marginal(3)
        for ordering in ([0, 1, 2, 3, 4, 5], [5, 3, 1, 4, 2, 0]):
            counts = {0: 0, 1: 0}
            runs = 200
            for seed in range(runs):
                result = sample_approximate_slocal(
                    instance, ExactInference(), 0.01, seed=seed, ordering=ordering
                )
                counts[result.configuration[3]] += 1
            empirical = {v: c / runs for v, c in counts.items()}
            assert total_variation(empirical, truth) < 0.12
