"""Observability subsystem tests: inertness, stitching, bit-identity.

The contract of :mod:`repro.obs` is threefold:

* **off means off** -- with no handle installed, hot paths see ``None``,
  no trace events or metric objects exist anywhere, and the only logging
  side effect is a ``NullHandler`` on the ``repro`` root logger;
* **on never changes answers** -- sampling results are bit-identical with
  tracing enabled on every backend, because tracing draws ids from
  ``os.urandom`` and never touches NumPy RNG state;
* **spans stitch across processes** -- pool workers and cluster workers
  continue the coordinator's trace context (pool initargs / the ``_obs``
  field inside the TASK payload), so one run yields one trace id across
  every participating pid, while peers without the field keep the legacy
  frame shapes.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro import obs
from repro.cluster.local import spawn_workers
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.models import coloring_model, hardcore_model
from repro.obs import logs as obs_logs
from repro.obs.cli import main as trace_cli
from repro.obs.trace import TraceContext, validate_event, validate_events
from repro.runtime import Runtime


@pytest.fixture(autouse=True)
def _obs_clean():
    """Every test starts and ends with observability fully off."""
    obs.disable()
    obs_logs.reset()
    yield
    obs.disable()
    obs_logs.reset()


def _instance():
    return SamplingInstance(hardcore_model(cycle_graph(10), 1.2), {0: 1})


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram(self):
        handle = obs.enable(tracing=False)
        handle.metrics.counter("c").inc()
        handle.metrics.counter("c").inc(4)
        handle.metrics.gauge("g").set(2.5)
        handle.metrics.gauge("g").add(-0.5)
        hist = handle.metrics.histogram("h", boundaries=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        snap = handle.metrics.snapshot()
        assert snap["c"] == 5
        assert snap["g"] == 2.0
        assert snap["h"]["count"] == 3
        assert snap["h"]["buckets"] == [1, 1, 1]  # <=1.0, <=10.0, overflow
        assert snap["h"]["min"] == 0.5 and snap["h"]["max"] == 50.0

    def test_kind_mismatch_rejected(self):
        handle = obs.enable(tracing=False)
        handle.metrics.counter("x")
        with pytest.raises(TypeError):
            handle.metrics.gauge("x")

    def test_same_object_on_repeat_lookup(self):
        handle = obs.enable(tracing=False)
        assert handle.metrics.counter("x") is handle.metrics.counter("x")


# ----------------------------------------------------------------------
# spans, ring buffer, wire context
# ----------------------------------------------------------------------
class TestTracing:
    def test_span_nesting_records_parents(self):
        handle = obs.enable()
        with obs.span("outer", depth=0):
            with obs.span("inner", depth=1):
                obs.instant("tick")
        events = {event["name"]: event for event in obs.events()}
        assert events["inner"]["parent"] == events["outer"]["span"]
        assert events["tick"]["parent"] == events["inner"]["span"]
        assert events["outer"]["trace"] == handle.tracer.trace_id
        validate_events(obs.events())

    def test_ring_buffer_bounds_memory(self):
        handle = obs.enable(ring=4)
        for index in range(10):
            obs.instant(f"e{index}")
        assert len(obs.events()) == 4
        assert handle.tracer.dropped == 6

    def test_wire_context_round_trip(self):
        obs.enable()
        with obs.span("parent"):
            wire = obs.wire_context()
        assert wire["v"] == 1
        ctx = TraceContext.from_wire(wire)
        assert ctx.trace_id == wire["trace"] and ctx.span_id == wire["span"]

    def test_foreign_version_and_junk_rejected(self):
        assert TraceContext.from_wire({"v": 99, "trace": "a", "span": "b"}) is None
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire("garbage") is None
        assert TraceContext.from_wire({"trace": "a"}) is None

    def test_record_remote_legacy_context_is_none(self):
        result, events = obs.record_remote(None, lambda: 41 + 1)
        assert result == 42 and events is None

    def test_record_remote_ships_events_under_parent_trace(self):
        obs.enable()
        with obs.span("root"):
            wire = obs.wire_context()
        result, events = obs.record_remote(
            wire, lambda: 7, name="worker.task", proc="fake-worker"
        )
        assert result == 7
        assert events and all(e["trace"] == wire["trace"] for e in events)
        assert events[-1]["parent"] == wire["span"]
        absorbed = obs.absorb_events(events)
        assert absorbed == len(events)

    def test_exporters_and_validation(self, tmp_path):
        obs.enable()
        with obs.span("work", items=3):
            obs.instant("mark")
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.json"
        assert obs.export_jsonl(str(jsonl)) == 2
        assert obs.export_chrome(str(chrome)) == 2
        for line in jsonl.read_text().splitlines():
            validate_event(json.loads(line))
        payload = json.loads(chrome.read_text())
        phases = {entry["ph"] for entry in payload["traceEvents"]}
        assert "X" in phases and "M" in phases

    def test_validate_event_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            validate_event({"name": "x"})
        good = dict(
            name="x", cat="span", trace="t", span="s", parent=None,
            ts=1.0, dur=0.0, pid=1, tid=1, proc="main", attrs={},
        )
        validate_event(good)
        with pytest.raises(ValueError):
            validate_event({**good, "dur": -1.0})

    def test_trace_cli_reads_both_formats(self, tmp_path, capsys):
        obs.enable()
        with obs.span("cli-span"):
            pass
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        obs.export_jsonl(str(jsonl))
        obs.export_chrome(str(chrome))
        for path in (jsonl, chrome):
            assert trace_cli([str(path), "--validate"]) == 0
            assert "schema OK" in capsys.readouterr().out
        assert trace_cli([str(jsonl)]) == 0
        assert "cli-span" in capsys.readouterr().out


# ----------------------------------------------------------------------
# off means off
# ----------------------------------------------------------------------
class TestObsOffInert:
    def test_module_level_noops(self):
        assert obs.active() is None
        assert obs.events() == []
        assert obs.snapshot() == {}
        assert obs.wire_context() is None
        assert obs.drain_events() == []
        assert obs.absorb_events([{"name": "x"}]) == 0
        with obs.span("ignored", anything=1):
            obs.instant("also ignored")
        assert obs.events() == []
        with pytest.raises(RuntimeError):
            obs.export_jsonl("/tmp/nope.jsonl")

    def test_span_off_is_shared_singleton(self):
        assert obs.span("a") is obs.span("b")

    def test_logging_side_effects_are_null_only(self):
        root = logging.getLogger("repro")
        assert all(
            isinstance(handler, logging.NullHandler) for handler in root.handlers
        )
        assert obs_logs.installed_handler() is None
        # Emitting through the hierarchy with obs off must not print
        # (no lastResort fallback) and must not raise.
        obs.log_event(
            obs.get_logger("cluster.test"), logging.WARNING, "event", key="value"
        )

    def test_runs_leave_no_trace_state(self):
        runtime = Runtime(backend="serial")
        try:
            runtime.run_chains("glauber", _instance(), 10, seeds=range(2))
        finally:
            runtime.shutdown()
        assert obs.active() is None
        assert obs.events() == []

    def test_ball_cache_stats_without_obs(self):
        instance = _instance()
        cache = instance.distribution.ball_cache()
        for node in (1, 2, 3, 1):
            cache.compiled_ball(node, 1)
        stats = cache.stats()
        assert stats["compiles"] == 3
        assert stats["hits"] == 1
        assert stats["misses"] == 3
        assert stats["size"] >= 3
        assert set(stats) == {
            "hits", "misses", "compiles", "adoptions", "drops", "size",
        }


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------
class TestStructuredLogs:
    def test_configure_formats_event_records(self, capsys):
        import io

        stream = io.StringIO()
        obs_logs.configure(logging.INFO, stream=stream)
        obs.log_event(
            obs.get_logger("cluster.worker"), logging.INFO,
            "worker.listening", port=9000, host="x",
        )
        text = stream.getvalue()
        assert "repro.cluster.worker" in text
        assert "worker.listening" in text and "port=9000" in text

    def test_configure_never_stacks_handlers(self):
        obs_logs.configure(logging.INFO)
        second = obs_logs.configure(logging.DEBUG)
        assert obs_logs.installed_handler() is second
        root = logging.getLogger("repro")
        real = [
            handler for handler in root.handlers
            if not isinstance(handler, logging.NullHandler)
        ]
        assert len(real) == 1
        obs_logs.reset()
        assert obs_logs.installed_handler() is None

    def test_caplog_sees_cluster_records(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro"):
            obs.log_event(
                obs.get_logger("cluster.coordinator"), logging.WARNING,
                "cluster.worker_died", address="h:1", reason="test",
            )
        assert any("cluster.worker_died" in rec.message for rec in caplog.records)


# ----------------------------------------------------------------------
# bit-identity across backends
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("backend", ["serial", "batched", "process"])
    def test_results_identical_with_tracing(self, backend):
        instance = _instance()
        kwargs = {"n_chains": 2} if backend != "serial" else {}
        baseline = Runtime(backend=backend, **kwargs)
        try:
            expected = baseline.run_chains("glauber", instance, 30, seeds=range(4))
        finally:
            baseline.shutdown()
        traced = Runtime(backend=backend, obs=True, **kwargs)
        try:
            observed = traced.run_chains("glauber", instance, 30, seeds=range(4))
            events = obs.events()
            assert events, "tracing on must record events"
            assert len({event["trace"] for event in events}) == 1
            snap = traced.snapshot()
            assert snap["backend"] == backend and "obs" in snap
        finally:
            traced.shutdown()
        assert observed == expected
        assert obs.active() is None  # shutdown released the owned handle

    def test_process_backend_stitches_pool_worker_spans(self):
        instance = SamplingInstance(coloring_model(cycle_graph(8), 3), {0: 0})
        # inline_threshold=0: this small workload must reach the real pool
        # (the point is the worker-side spans), not the in-process guard.
        runtime = Runtime(
            backend="process", n_chains=2, n_workers=2, obs=True, inline_threshold=0
        )
        try:
            runtime.run_chains("glauber", instance, 25, seeds=range(4))
            events = obs.events()
            procs = {event["proc"] for event in events}
            assert len({event["trace"] for event in events}) == 1
            # Pool workers shipped their spans back to the parent ring.
            assert "pool-worker" in procs and "main" in procs
            validate_events(events)
        finally:
            runtime.shutdown()


# ----------------------------------------------------------------------
# cluster stitching
# ----------------------------------------------------------------------
class TestClusterTracing:
    def test_cluster_round_trip_one_trace_id(self):
        instance = _instance()
        with spawn_workers(2, auth_key="obs-test-key") as pool:
            baseline = Runtime(
                backend="cluster", addresses=pool.addresses,
                auth_key="obs-test-key",
            )
            try:
                expected = baseline.run_chains(
                    "glauber", instance, 30, seeds=range(4)
                )
            finally:
                baseline.shutdown()
            traced = Runtime(
                backend="cluster", addresses=pool.addresses,
                auth_key="obs-test-key", obs=True,
            )
            try:
                observed = traced.run_chains(
                    "glauber", instance, 30, seeds=range(4)
                )
                events = obs.events()
                procs = {event["proc"] for event in events}
                names = {event["name"] for event in events}
                assert len({event["trace"] for event in events}) == 1
                assert "cluster-worker" in procs and "main" in procs
                assert "worker.task" in names  # worker-side span shipped back
                validate_events(events)

                # A no-context frame while tracing is on: the worker must
                # answer with the legacy 2-tuple RESULT (events is None on
                # the worker side), and the echo resolves normally.
                future = traced._cluster.submit_task("ping", ("legacy",))
                assert future.result(timeout=30) == ("legacy",)

                snap = traced.snapshot()
                assert snap["cluster"]["live_workers"] == 2
                assert snap["cluster"]["authenticated"] is True
            finally:
                traced.shutdown()
        assert observed == expected
