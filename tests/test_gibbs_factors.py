"""Unit tests for constraints/factors."""

import pytest

from repro.gibbs import Factor
from repro.graphs import cycle_graph, path_graph


class TestFactorBasics:
    def test_evaluate_by_assignment_and_values(self):
        factor = Factor((0, 1), lambda a, b: 0.0 if a == b else 2.0)
        assert factor.evaluate({0: 1, 1: 1}) == 0.0
        assert factor.evaluate({0: 0, 1: 1, 5: 9}) == 2.0
        assert factor.evaluate_values((0, 1)) == 2.0

    def test_scope_validation(self):
        with pytest.raises(ValueError):
            Factor((), lambda: 1.0)
        with pytest.raises(ValueError):
            Factor((0, 0), lambda a, b: 1.0)

    def test_negative_weight_rejected(self):
        factor = Factor((0,), lambda a: -1.0)
        with pytest.raises(ValueError):
            factor.evaluate({0: 1})

    def test_from_table_with_default(self):
        factor = Factor.from_table((0, 1), {(0, 1): 3.0, (1, 0): 3.0}, default=0.5)
        assert factor.evaluate_values((0, 1)) == 3.0
        assert factor.evaluate_values((0, 0)) == 0.5

    def test_is_satisfied(self):
        factor = Factor((0, 1), lambda a, b: float(a != b))
        assert factor.is_satisfied({0: 0, 1: 1})
        assert not factor.is_satisfied({0: 1, 1: 1})

    def test_evaluation_cache_consistency(self):
        calls = []

        def weigher(a):
            calls.append(a)
            return 1.0 + a

        factor = Factor((0,), weigher)
        assert factor.evaluate({0: 2}) == 3.0
        assert factor.evaluate({0: 2}) == 3.0
        assert calls == [2]


class TestHardSoftAndLocality:
    def test_is_hard(self):
        hard = Factor((0, 1), lambda a, b: float(not (a == 1 and b == 1)))
        soft = Factor((0, 1), lambda a, b: 1.0 + a + b)
        assert hard.is_hard((0, 1))
        assert not soft.is_hard((0, 1))

    def test_scope_diameter_unary_is_zero(self):
        factor = Factor((3,), lambda a: 1.0)
        assert factor.scope_diameter(path_graph(5)) == 0

    def test_scope_diameter_edge_is_one(self):
        factor = Factor((0, 1), lambda a, b: 1.0)
        assert factor.scope_diameter(cycle_graph(5)) == 1

    def test_scope_diameter_distant_nodes(self):
        factor = Factor((0, 3), lambda a, b: 1.0)
        assert factor.scope_diameter(path_graph(5)) == 3
