"""Tests for global counting via the chain-rule decomposition."""

import pytest

from repro.core import estimate_partition_function, estimate_solution_count
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.inference import BoundaryPaddedInference, BoostedInference, ExactInference, correlation_decay_for
from repro.models import coloring_model, hardcore_model, matching_model


class TestChainRuleCounting:
    def test_exact_oracle_recovers_partition_function(self):
        distribution = hardcore_model(cycle_graph(6), fugacity=1.3)
        instance = SamplingInstance(distribution)
        result = estimate_partition_function(instance, ExactInference())
        assert result.estimate == pytest.approx(distribution.partition_function(), rel=1e-9)

    def test_conditional_partition_function(self):
        distribution = hardcore_model(cycle_graph(6), fugacity=1.0)
        instance = SamplingInstance(distribution, {0: 1})
        result = estimate_partition_function(instance, ExactInference())
        assert result.estimate == pytest.approx(
            distribution.partition_function({0: 1}), rel=1e-9
        )

    def test_counts_independent_sets_of_cycle(self):
        distribution = hardcore_model(cycle_graph(7), fugacity=1.0)
        instance = SamplingInstance(distribution)
        # Lucas number L7 = 29 independent sets.
        assert estimate_solution_count(instance, ExactInference()) == pytest.approx(29.0)

    def test_counts_colorings(self):
        distribution = coloring_model(cycle_graph(5), num_colors=3)
        instance = SamplingInstance(distribution)
        assert estimate_solution_count(instance, ExactInference()) == pytest.approx(30.0)

    def test_approximate_engine_close_to_truth(self):
        distribution = hardcore_model(cycle_graph(10), fugacity=0.8)
        instance = SamplingInstance(distribution)
        engine = BoostedInference(BoundaryPaddedInference(decay_rate=0.5))
        result = estimate_partition_function(instance, engine, error=0.01)
        truth = distribution.partition_function()
        assert result.estimate == pytest.approx(truth, rel=0.15)

    def test_correlation_decay_engine_on_matchings(self):
        distribution = matching_model(path_graph(6), edge_weight=1.0)
        instance = SamplingInstance(distribution)
        engine = correlation_decay_for(distribution, decay_rate=0.4)
        result = estimate_partition_function(instance, engine, error=0.01)
        truth = distribution.partition_function()
        assert result.estimate == pytest.approx(truth, rel=0.2)

    def test_explicit_anchor_and_ordering(self):
        distribution = hardcore_model(path_graph(4), fugacity=1.0)
        instance = SamplingInstance(distribution)
        anchor = {0: 0, 1: 0, 2: 0, 3: 0}
        result = estimate_partition_function(
            instance, ExactInference(), anchor=anchor, ordering=[3, 1, 0, 2]
        )
        assert result.anchor == anchor
        assert result.estimate == pytest.approx(distribution.partition_function())

    def test_invalid_anchor_rejected(self):
        distribution = hardcore_model(path_graph(4), fugacity=1.0)
        instance = SamplingInstance(distribution, {0: 1})
        with pytest.raises(ValueError):
            estimate_partition_function(
                instance, ExactInference(), anchor={0: 1, 1: 1, 2: 0, 3: 0}
            )
        with pytest.raises(ValueError):
            estimate_partition_function(
                instance, ExactInference(), anchor={0: 0, 1: 0, 2: 0, 3: 0}
            )
        with pytest.raises(ValueError):
            estimate_partition_function(instance, ExactInference(), anchor={0: 1})

    def test_log_estimate_consistency(self):
        import math

        distribution = hardcore_model(cycle_graph(8), fugacity=1.0)
        instance = SamplingInstance(distribution)
        result = estimate_partition_function(instance, ExactInference())
        assert math.exp(result.log_estimate) == pytest.approx(result.estimate)
