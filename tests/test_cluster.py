"""Cluster subsystem tests: protocol, scheduling, failure, conformance.

The contract of :mod:`repro.cluster` extends the runtime contract over a
socket transport:

* the framed-pickle protocol rejects malformed frames before interpreting
  them (magic, type, length, payload all validated);
* the coordinator adopts ``RESULT`` frames by task id in *any* arrival
  order, requeues the in-flight tasks of a dead worker, and cancels
  pending work when a stream is abandoned or the runtime shuts down;
* ``Runtime(backend="cluster")`` passes the same facade-conformance
  checks as the serial/batched/process backends, with every result --
  ball marginals, chain samples, the E5 radius sweep -- bit-identical to
  the serial loop.

In-process :class:`~repro.cluster.worker.ClusterWorker` threads back the
fast tests (no interpreter startup); the ``slow``-marked tests exercise
real subprocess workers via :func:`~repro.cluster.local.spawn_workers`,
including hard kills.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading

import pytest

from repro.cluster import protocol
from repro.cluster.coordinator import ClusterCoordinator, ClusterError, parse_address
from repro.cluster.local import spawn_workers
from repro.cluster.worker import ClusterWorker, run_task
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, random_tree
from repro.inference.ssm_inference import TruncatedBallInference, padded_ball_marginal
from repro.models import coloring_model, hardcore_model
from repro.runtime import Runtime, resolve_runtime
from repro.runtime.shards import InstanceSpec


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
@pytest.fixture
def inprocess_workers():
    """Two real worker servers on loopback, served from daemon threads."""
    workers = [ClusterWorker() for _ in range(2)]
    threads = [
        threading.Thread(target=worker.serve_forever, daemon=True)
        for worker in workers
    ]
    for thread in threads:
        thread.start()
    try:
        yield workers
    finally:
        for worker in workers:
            worker.close()


def _addresses(workers):
    return [worker.address for worker in workers]


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            payload = {"tasks": [(0, 2)], "arrays": (1.5, 2.5)}
            protocol.send_message(left, protocol.TASK, payload)
            kind, received = protocol.recv_message(right)
            assert kind == protocol.TASK and received == payload
        finally:
            left.close()
            right.close()

    def test_bad_magic_is_rejected(self):
        left, right = socket.socketpair()
        try:
            data = pickle.dumps(None)
            left.sendall(struct.pack(">4sBQ", b"XXXX", protocol.TASK, len(data)) + data)
            with pytest.raises(protocol.ProtocolError, match="magic"):
                protocol.recv_message(right)
        finally:
            left.close()
            right.close()

    def test_unknown_type_and_oversized_length_are_rejected(self):
        for kind, length in ((99, 4), (protocol.TASK, protocol.MAX_FRAME_BYTES + 1)):
            left, right = socket.socketpair()
            try:
                left.sendall(struct.pack(">4sBQ", protocol.MAGIC, kind, length) + b"xxxx")
                with pytest.raises(protocol.ProtocolError):
                    protocol.recv_message(right)
            finally:
                left.close()
                right.close()

    def test_control_frames_have_a_tighter_limit(self):
        # A HELLO/HEARTBEAT frame claiming a giant payload must be rejected
        # on the header alone -- before any payload byte is read, let alone
        # unpickled (a stray peer cannot force a big allocation during the
        # handshake).  The oversize length here is far below the data-frame
        # limit, so only the per-kind control limit catches it.
        oversize = protocol.MAX_CONTROL_FRAME_BYTES + 1
        assert oversize < protocol.MAX_FRAME_BYTES
        for kind in (protocol.HELLO, protocol.HEARTBEAT):
            left, right = socket.socketpair()
            try:
                left.sendall(struct.pack(">4sBQ", protocol.MAGIC, kind, oversize))
                with pytest.raises(protocol.ProtocolError, match="exceeds"):
                    protocol.recv_message(right)
            finally:
                left.close()
                right.close()

    def test_send_side_enforces_the_per_kind_limit(self):
        left, right = socket.socketpair()
        try:
            blob = b"x" * (protocol.MAX_CONTROL_FRAME_BYTES + 1)
            with pytest.raises(protocol.ProtocolError, match="refusing to send"):
                protocol.send_message(left, protocol.HEARTBEAT, blob)
            # The same payload is fine as a data frame (drain concurrently:
            # it exceeds the socketpair buffer).
            received = []
            reader = threading.Thread(
                target=lambda: received.append(protocol.recv_message(right))
            )
            reader.start()
            protocol.send_message(left, protocol.RESULT, blob)
            reader.join(timeout=10)
            assert received and received[0] == (protocol.RESULT, blob)
        finally:
            left.close()
            right.close()

    def test_frame_limit_per_kind(self):
        for kind in (protocol.HELLO, protocol.HEARTBEAT):
            assert protocol.frame_limit(kind) == protocol.MAX_CONTROL_FRAME_BYTES
        # ERROR stays a data frame within PROTOCOL_VERSION 1: previous
        # releases send untruncated traceback reports.
        for kind in (protocol.SPEC, protocol.TASK, protocol.RESULT, protocol.ERROR):
            assert protocol.frame_limit(kind) == protocol.MAX_FRAME_BYTES

    def test_worker_error_reports_are_truncated(self):
        from repro.cluster.worker import _ERROR_TEXT_LIMIT, _error_text

        report = _error_text(ValueError("x" * (4 * _ERROR_TEXT_LIMIT)))
        assert len(report) <= _ERROR_TEXT_LIMIT + 64
        assert report.endswith("[error report truncated]")
        assert _error_text(ValueError("short")) == "short"

    def test_eof_raises_connection_closed(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(protocol.ConnectionClosed):
                protocol.recv_message(right)
        finally:
            right.close()

    def test_undecodable_payload_is_rejected(self):
        left, right = socket.socketpair()
        try:
            garbage = b"\x80\x05not-a-pickle"
            left.sendall(
                struct.pack(">4sBQ", protocol.MAGIC, protocol.RESULT, len(garbage))
                + garbage
            )
            with pytest.raises(protocol.ProtocolError, match="undecodable"):
                protocol.recv_message(right)
        finally:
            left.close()
            right.close()

    def test_hello_validation(self):
        payload = protocol.hello_payload("worker")
        assert protocol.check_hello(payload, "worker") is payload
        with pytest.raises(protocol.ProtocolError, match="expected a 'coordinator'"):
            protocol.check_hello(payload, "coordinator")
        with pytest.raises(protocol.ProtocolError, match="version"):
            protocol.check_hello({"role": "worker", "version": 99}, "worker")

    def test_parse_address(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_address(("localhost", 8000)) == ("localhost", 8000)
        with pytest.raises(ValueError):
            parse_address("no-port")


# ----------------------------------------------------------------------
# worker loop (in-process servers)
# ----------------------------------------------------------------------
class TestWorkerLoop:
    def test_malformed_frame_gets_error_reply_and_close(self, inprocess_workers):
        worker = inprocess_workers[0]
        with socket.create_connection(worker.address, timeout=10) as sock:
            sock.sendall(b"GARBAGE-THAT-IS-NOT-A-FRAME-" * 4)
            kind, payload = protocol.recv_message(sock)
            assert kind == protocol.ERROR
            task_id, message = payload
            assert task_id is None and "magic" in message
            # The worker closes the rejected connection afterwards.
            with pytest.raises(protocol.ConnectionClosed):
                protocol.recv_message(sock)

    def test_worker_survives_a_rejected_connection(self, inprocess_workers):
        worker = inprocess_workers[0]
        with socket.create_connection(worker.address, timeout=10) as sock:
            sock.sendall(b"junk-frame-bytes" * 8)
        # A well-behaved coordinator can still connect and work afterwards.
        with ClusterCoordinator([worker.address]) as coordinator:
            assert coordinator.submit_task("ping", "hi").result(timeout=30) == "hi"

    def test_task_before_spec_fails_cleanly(self, inprocess_workers):
        with ClusterCoordinator([inprocess_workers[0].address]) as coordinator:
            future = coordinator.submit_task(
                "ball_marginals", {"spec_id": 123, "tasks": [], "memo_cap": None}
            )
            with pytest.raises(ClusterError, match="unknown spec"):
                future.result(timeout=30)

    def test_run_task_rejects_unknown_kinds(self):
        with pytest.raises(protocol.ProtocolError, match="unknown task kind"):
            run_task("explode", {}, {})


# ----------------------------------------------------------------------
# coordinator scheduling
# ----------------------------------------------------------------------
class TestCoordinator:
    def test_generic_submit_and_map_unordered(self, inprocess_workers):
        with ClusterCoordinator(_addresses(inprocess_workers)) as coordinator:
            assert coordinator.submit(pow, 2, 8).result(timeout=30) == 256
            results = sorted(coordinator.map_unordered(abs, [-3, 1, -2]))
            assert results == [(0, 3), (1, 1), (2, 2)]

    def test_worker_task_exception_carries_traceback(self, inprocess_workers):
        with ClusterCoordinator(_addresses(inprocess_workers)) as coordinator:
            future = coordinator.submit(divmod, 1, 0)
            with pytest.raises(ClusterError, match="ZeroDivisionError"):
                future.result(timeout=30)

    def test_unpicklable_submit_fails_without_killing_the_worker(
        self, inprocess_workers
    ):
        with ClusterCoordinator([inprocess_workers[0].address]) as coordinator:
            with pytest.raises(Exception):
                coordinator.submit(lambda x: x, 1)
            # The connection is untouched: no bytes were sent.
            assert coordinator.live_worker_count == 1
            assert coordinator.submit_task("ping", 7).result(timeout=30) == 7
            assert not any(worker.inflight for worker in coordinator.workers)

    def test_least_loaded_dispatch_spreads_tasks(self, inprocess_workers):
        with ClusterCoordinator(_addresses(inprocess_workers)) as coordinator:
            futures = [coordinator.submit_task("ping", index) for index in range(6)]
            assert sorted(future.result(timeout=30) for future in futures) == list(
                range(6)
            )

    def test_out_of_order_results_are_adopted_by_task_id(self):
        """A hand-rolled worker answers tasks in reversed order."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        received = []

        def fake_worker():
            connection, _ = listener.accept()
            with connection:
                kind, payload = protocol.recv_message(connection)
                assert kind == protocol.HELLO
                protocol.send_message(
                    connection, protocol.HELLO, protocol.hello_payload("worker")
                )
                while len(received) < 3:
                    kind, payload = protocol.recv_message(connection)
                    if kind == protocol.TASK:
                        received.append(payload)
                # Reply strictly in reverse arrival order.
                for task_id, kind_, args in reversed(received):
                    protocol.send_message(
                        connection, protocol.RESULT, (task_id, f"answer-{args}")
                    )
                # Hold the socket open until the coordinator hangs up.
                try:
                    while True:
                        protocol.recv_message(connection)
                except protocol.ProtocolError:
                    pass

        thread = threading.Thread(target=fake_worker, daemon=True)
        thread.start()
        try:
            with ClusterCoordinator([listener.getsockname()[:2]]) as coordinator:
                futures = [
                    coordinator.submit_task("ping", label) for label in ("a", "b", "c")
                ]
                assert [future.result(timeout=30) for future in futures] == [
                    "answer-a",
                    "answer-b",
                    "answer-c",
                ]
        finally:
            listener.close()
            thread.join(timeout=10)

    def test_late_result_for_cancelled_task_is_dropped(self, inprocess_workers):
        with ClusterCoordinator([inprocess_workers[0].address]) as coordinator:
            iterator = coordinator.map_unordered(abs, [-1, -2, -3, -4])
            next(iterator)
            iterator.close()  # cancels what is still pending
            # The connection keeps working; stale RESULT frames (if any) are
            # dropped because their task ids are no longer in flight.
            assert coordinator.submit_task("ping", "still-alive").result(
                timeout=30
            ) == "still-alive"

    def test_cancel_reaches_the_worker_queue(self, inprocess_workers):
        import time

        with ClusterCoordinator([inprocess_workers[0].address]) as coordinator:
            start = time.monotonic()
            # One blocker occupies the runner; five more sleeps queue behind
            # it.  Discarding them (what an abandoned stream's finally does)
            # cancels the queued sleeps on the worker too, so the follow-up
            # ping must not wait ~5 extra seconds behind work nobody wants.
            blocker = coordinator.submit(time.sleep, 1.0)
            sleeps = [coordinator.submit(time.sleep, 1.0) for _ in range(5)]
            coordinator._discard(sleeps)
            assert coordinator.submit_task("ping", "after").result(timeout=30) == (
                "after"
            )
            elapsed = time.monotonic() - start
            assert elapsed < 4.0, f"queued cancelled tasks still ran ({elapsed:.1f}s)"
            assert blocker.result(timeout=30) is None
            assert all(sleep.cancelled() for sleep in sleeps)

    def test_dropped_coordinator_is_collected_and_closes_sockets(
        self, inprocess_workers
    ):
        import gc
        import weakref

        coordinator = ClusterCoordinator([inprocess_workers[0].address])
        assert coordinator.submit_task("ping", 1).result(timeout=30) == 1
        workers = coordinator.workers
        ref = weakref.ref(coordinator)
        del coordinator
        gc.collect()
        assert ref() is None, "service threads pinned the coordinator"
        # The finalizer closed the connection (fileno -1 once closed).
        assert all(worker.sock.fileno() == -1 for worker in workers)

    def test_shutdown_is_idempotent_and_rejects_new_work(self, inprocess_workers):
        coordinator = ClusterCoordinator(_addresses(inprocess_workers))
        coordinator.shutdown()
        coordinator.shutdown()
        with pytest.raises(ClusterError, match="shut down"):
            coordinator.submit_task("ping", 1)

    def test_at_least_one_address_required(self):
        with pytest.raises(ValueError):
            ClusterCoordinator([])


# ----------------------------------------------------------------------
# spec-bound streaming against in-process workers
# ----------------------------------------------------------------------
class TestClusterStreams:
    def test_ball_marginals_match_serial_and_warm_the_cache(self, inprocess_workers):
        distribution = coloring_model(cycle_graph(9), 3)
        instance = SamplingInstance(distribution, {0: 1})
        serial = {
            node: padded_ball_marginal(instance, node, 2)
            for node in instance.free_nodes
        }
        distribution.ball_cache().clear()
        with ClusterCoordinator(_addresses(inprocess_workers)) as coordinator:
            streamed = dict(
                coordinator.stream_padded_ball_marginals(
                    instance, instance.free_nodes, 2, chunk_size=2
                )
            )
        assert streamed == serial
        assert len(distribution.ball_cache()._compiled) > 0

    def test_stream_compiled_balls_adopts_into_cache(self, inprocess_workers):
        distribution = hardcore_model(random_tree(14, seed=4), 1.1)
        instance = SamplingInstance(distribution)
        tasks = [(node, 2) for node in list(distribution.nodes)[:5]]
        with ClusterCoordinator(_addresses(inprocess_workers)) as coordinator:
            balls = dict(coordinator.stream_compiled_balls(instance, tasks))
        assert set(balls) == set(tasks)
        cache = distribution.ball_cache()
        for key, ball in balls.items():
            assert cache.compiled_ball(*key) is ball

    def test_empty_streams(self, inprocess_workers):
        instance = SamplingInstance(hardcore_model(cycle_graph(6), 1.0))
        with ClusterCoordinator(_addresses(inprocess_workers)) as coordinator:
            assert list(coordinator.stream_ball_marginal_tasks(instance, [])) == []
            assert list(coordinator.stream_compiled_balls(instance, [])) == []

    def test_failed_shard_surfaces_clean_error(self, inprocess_workers):
        instance = SamplingInstance(hardcore_model(cycle_graph(6), 1.0))
        with ClusterCoordinator(_addresses(inprocess_workers)) as coordinator:
            with pytest.raises(RuntimeError, match="ball shard failed"):
                list(
                    coordinator.stream_ball_marginal_tasks(
                        instance, [("no-such-node", 1)]
                    )
                )

    def test_chain_blocks_match_serial(self, inprocess_workers):
        from repro.runtime import chain_seed_sequences
        from repro.sampling.glauber import glauber_sample, luby_glauber_sample

        instance = SamplingInstance(hardcore_model(cycle_graph(8), 1.0), {0: 1})
        seeds = chain_seed_sequences(3, 5)
        with ClusterCoordinator(_addresses(inprocess_workers)) as coordinator:
            # Legacy block-kind aliases keep working on the kernel path.
            glauber = coordinator.chain_samples(instance, "glauber", 60, seeds)
            luby = coordinator.chain_samples(instance, "luby", 12, seeds)
        assert glauber == [glauber_sample(instance, 60, seed=seed) for seed in seeds]
        assert luby == [luby_glauber_sample(instance, 12, seed=seed) for seed in seeds]

    # The every-kernel cluster bit-identity sweep lives in the parametrized
    # conformance harness (tests/test_conformance.py, cluster leg behind
    # the slow marker); this file keeps the coordinator-level semantics.

    def test_chain_samples_rejects_unknown_kernels(self, inprocess_workers):
        instance = SamplingInstance(hardcore_model(cycle_graph(6), 1.0))
        with ClusterCoordinator(_addresses(inprocess_workers)) as coordinator:
            with pytest.raises(ValueError, match="unknown chain kernel"):
                coordinator.chain_samples(instance, "no-such-kernel", 3, [0, 1])

    def test_spec_reconstruction_is_bit_identical(self):
        instance = SamplingInstance(hardcore_model(random_tree(12, seed=6), 1.4), {0: 0})
        spec = pickle.loads(pickle.dumps(InstanceSpec.from_instance(instance)))
        rebuilt = spec.to_instance()
        assert rebuilt.free_nodes == instance.free_nodes
        assert rebuilt.distribution.nodes == instance.distribution.nodes
        compiled = instance.distribution.compiled_engine()
        clone = rebuilt.distribution.compiled_engine()
        node = instance.free_nodes[2]
        assert clone.marginal(node, {0: 0}) == compiled.marginal(node, {0: 0})
        assert spec.to_instance() is rebuilt  # memoised

    def test_spec_is_reused_across_streams_of_one_instance(self, inprocess_workers):
        distribution = hardcore_model(cycle_graph(9), 1.1)
        instance = SamplingInstance(distribution, {0: 0})
        with ClusterCoordinator([inprocess_workers[0].address]) as coordinator:
            first = dict(
                coordinator.stream_padded_ball_marginals(
                    instance, instance.free_nodes, 1
                )
            )
            second = dict(
                coordinator.stream_padded_ball_marginals(
                    instance, instance.free_nodes, 2
                )
            )
            # One instance, one spec id, shipped to the connection once.
            assert len(coordinator.workers[0].specs) == 1
        assert set(first) == set(second) == set(instance.free_nodes)

    def test_spec_evicted_by_worker_cache_is_reshipped(self, inprocess_workers):
        from repro.cluster.worker import SPEC_CACHE_LIMIT

        instances = [
            SamplingInstance(hardcore_model(cycle_graph(6 + extra), 1.0), {0: 0})
            for extra in range(SPEC_CACHE_LIMIT + 2)
        ]
        with ClusterCoordinator([inprocess_workers[0].address]) as coordinator:
            for instance in instances:
                dict(
                    coordinator.stream_padded_ball_marginals(
                        instance, instance.free_nodes, 1
                    )
                )
            # The worker's FIFO cache evicted the early specs; the mirror
            # replayed the eviction, so a fresh stream over the first
            # instance re-ships its spec instead of failing on the worker.
            assert len(coordinator.workers[0].specs) == SPEC_CACHE_LIMIT
            first = instances[0]
            serial = {
                node: padded_ball_marginal(first, node, 1)
                for node in first.free_nodes
            }
            streamed = dict(
                coordinator.stream_padded_ball_marginals(
                    first, first.free_nodes, 1
                )
            )
            assert streamed == serial

    def test_spec_pickle_excludes_reconstruction(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(6), 1.0))
        spec = InstanceSpec.from_instance(instance)
        spec.to_instance()  # would not pickle (closure factors)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone._instance is None
        assert clone.nodes == spec.nodes


# ----------------------------------------------------------------------
# the Runtime facade on the cluster backend (in-process workers)
# ----------------------------------------------------------------------
class TestClusterRuntimeFacade:
    def test_resolve_and_validation(self):
        assert resolve_runtime("cluster").is_cluster
        # The string form resolves to one shared runtime (one worker pool).
        assert resolve_runtime("cluster") is resolve_runtime("cluster")
        runtime = Runtime("cluster", addresses=["10.0.0.1:9000"])
        assert runtime.n_workers == 1 and runtime.addresses == ["10.0.0.1:9000"]
        with pytest.raises(ValueError, match="addresses"):
            Runtime("serial", addresses=["10.0.0.1:9000"])
        with pytest.raises(ValueError, match="cluster"):
            Runtime("serial").cluster_client()

    def test_facade_conformance(self, inprocess_workers):
        with Runtime("cluster", addresses=_addresses(inprocess_workers)) as runtime:
            # submit: a real pending future that resolves to the result.
            assert runtime.submit(pow, 3, 4).result(timeout=30) == 81
            failing = runtime.submit(divmod, 1, 0)
            assert failing.exception(timeout=30) is not None
            # map: ordered results; map_unordered: indexed results.
            assert runtime.map(abs, [-1, 2, -3]) == [1, 2, 3]
            assert sorted(runtime.map_unordered(abs, [-5, 6])) == [(0, 5), (1, 6)]

    def test_map_with_closure_falls_back_in_process(self):
        # Closures cannot cross the socket transport; the facade must run
        # them in-process instead of crashing with PicklingError -- without
        # even connecting (the addresses here are deliberately unreachable).
        runtime = Runtime("cluster", addresses=["127.0.0.1:1"])
        offset = 10
        assert runtime.map(lambda x: x + offset, range(3)) == [10, 11, 12]
        assert list(runtime.map_unordered(lambda x: x + offset, [5])) == [(0, 15)]

        # Functions from a script's __main__ pickle locally by reference but
        # cannot be imported by a worker -- they must also fall back.
        def script_function(x):
            return x * 2

        script_function.__module__ = "__main__"
        assert runtime.map(script_function, [1, 2]) == [2, 4]
        assert runtime._cluster is None  # no connection was attempted

    def test_experiment_drivers_accept_a_cluster_runtime(self, inprocess_workers):
        # E6-style drivers hand local row closures to runtime.map; the
        # documented contract is that they work unchanged on every backend.
        from repro.experiments import e06_hardcore_rounds

        serial = e06_hardcore_rounds.run(sizes=(8,))
        with Runtime("cluster", addresses=_addresses(inprocess_workers)) as runtime:
            clustered = e06_hardcore_rounds.run(sizes=(8,), runtime=runtime)
        assert clustered == serial

    def test_stream_ball_marginals_matches_serial(self, inprocess_workers):
        distribution = hardcore_model(random_tree(13, seed=2), 1.2)
        instance = SamplingInstance(distribution, {0: 0})
        serial = dict(Runtime().stream_ball_marginals(instance, instance.free_nodes, 2))
        with Runtime("cluster", addresses=_addresses(inprocess_workers)) as runtime:
            streamed = dict(
                runtime.stream_ball_marginals(instance, instance.free_nodes, 2)
            )
        assert streamed == serial

    def test_dict_engine_request_keeps_the_reference_loop(self, inprocess_workers):
        distribution = hardcore_model(cycle_graph(7), 1.1)
        instance = SamplingInstance(distribution, {0: 0})
        reference = TruncatedBallInference(radius=1, engine="dict")
        with Runtime("cluster", addresses=_addresses(inprocess_workers)) as runtime:
            clustered = TruncatedBallInference(radius=1, engine="dict", runtime=runtime)
            assert clustered.marginals(instance, 0.05) == reference.marginals(
                instance, 0.05
            )
            # Chains under engine="dict" likewise stay in-process.
            serial = Runtime("serial", n_chains=2).glauber_sample(
                instance, 20, seed=1, engine="dict"
            )
            runtime.n_chains = 2
            assert runtime.glauber_sample(instance, 20, seed=1, engine="dict") == serial

    # The every-kernel run_chains sweep on the cluster backend lives in
    # the conformance harness (tests/test_conformance.py).

    def test_warm_ball_cache(self, inprocess_workers):
        distribution = hardcore_model(cycle_graph(8), 1.0)
        instance = SamplingInstance(distribution)
        tasks = [(node, 1) for node in list(distribution.nodes)[:4]] + [(0, 1)]
        with Runtime("cluster", addresses=_addresses(inprocess_workers)) as runtime:
            assert runtime.warm_ball_cache(instance, tasks) == 4
        cache = distribution.ball_cache()
        assert all(key in cache._compiled for key in dict.fromkeys(tasks))

    def test_abandoned_stream_then_shutdown_releases_cleanly(self, inprocess_workers):
        distribution = coloring_model(cycle_graph(10), 3)
        instance = SamplingInstance(distribution, {0: 1})
        runtime = Runtime("cluster", addresses=_addresses(inprocess_workers))
        stream = runtime.stream_ball_marginals(instance, instance.free_nodes, 2)
        next(stream)
        # Abandon the stream mid-iteration, then shut down (twice): neither
        # may hang on pending socket traffic, and the workers stay serviceable
        # for the next runtime.
        runtime.shutdown()
        runtime.shutdown()
        stream.close()
        with Runtime("cluster", addresses=_addresses(inprocess_workers)) as fresh:
            assert fresh.submit(pow, 2, 2).result(timeout=30) == 4

    def test_repeated_connect_cycles_never_wedge_a_worker(self, inprocess_workers):
        # Regression: coordinator close() without shutdown(SHUT_RDWR) left
        # the worker's blocked recv pinning the connection (no FIN), so the
        # single-connection worker never returned to accept and the *next*
        # coordinator's handshake timed out.
        distribution = hardcore_model(cycle_graph(12), fugacity=6.0)
        instance = SamplingInstance(distribution, {0: 1})
        for _ in range(3):
            runtime = Runtime("cluster", addresses=_addresses(inprocess_workers))
            stream = runtime.stream_ball_marginals(instance, instance.free_nodes, 3)
            next(stream)
            stream.close()
            runtime.shutdown()
        with ClusterCoordinator(
            _addresses(inprocess_workers), connect_timeout=30
        ) as coordinator:
            assert coordinator.submit_task("ping", "fresh").result(timeout=30) == (
                "fresh"
            )

    def test_ssm_engine_and_locality_required_match_serial(self, inprocess_workers):
        distribution = hardcore_model(random_tree(15, seed=8), 1.3)
        instance = SamplingInstance(distribution, {0: 0})
        serial_engine = TruncatedBallInference(radius=2)
        with Runtime("cluster", addresses=_addresses(inprocess_workers)) as runtime:
            cluster_engine = TruncatedBallInference(radius=2, runtime=runtime)
            assert cluster_engine.marginals(instance, 0.05) == serial_engine.marginals(
                instance, 0.05
            )
            streamed = dict(cluster_engine.marginals_stream(instance, 0.05))
            assert streamed == serial_engine.marginals(instance, 0.05)

            from repro.spatialmixing import locality_required

            e5 = SamplingInstance(
                hardcore_model(cycle_graph(12), fugacity=6.0), {0: 1}
            )
            serial_radius = locality_required(e5, 6, error=0.05, max_radius=6)
            cluster_radius = locality_required(
                e5, 6, error=0.05, max_radius=6, runtime=runtime
            )
            assert cluster_radius == serial_radius


# ----------------------------------------------------------------------
# subprocess workers: spawn, kill, requeue (the multi-machine rehearsal)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestLocalWorkerPool:
    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            spawn_workers(0)

    def test_worker_death_mid_stream_requeues_bit_identically(self):
        import time

        distribution = coloring_model(cycle_graph(10), 3)
        instance = SamplingInstance(distribution, {0: 1})
        serial = {
            node: padded_ball_marginal(instance, node, 2)
            for node in instance.free_nodes
        }
        distribution.ball_cache().clear()
        with spawn_workers(2) as pool:
            with ClusterCoordinator(pool.addresses) as coordinator:
                # Pin one worker on a slow task: its runner executes tasks in
                # order, so the ball chunks queued behind the sleep are
                # *guaranteed* to still be in flight when we kill it (without
                # this, fast workers can drain everything before the kill).
                coordinator.submit(time.sleep, 1.0)
                victim = next(
                    index
                    for index, worker in enumerate(coordinator.workers)
                    if worker.inflight
                )
                stream = coordinator.stream_ball_marginal_tasks(
                    instance,
                    [(node, 2) for node in instance.free_nodes],
                    chunk_size=1,
                )
                merged = {}
                key, marginal = next(stream)  # from the unblocked worker
                merged[key[0]] = marginal
                assert coordinator.workers[victim].inflight
                pool.kill(victim)
                for key, marginal in stream:
                    merged[key[0]] = marginal
                assert coordinator.requeued > 0
                assert coordinator.live_worker_count == 1
        # Bit-identical to the serial loop despite the death + requeue, and
        # the merged BallCache serves the serial replay as cache hits.
        assert merged == serial
        assert {
            node: padded_ball_marginal(instance, node, 2)
            for node in instance.free_nodes
        } == serial

    def test_all_workers_dead_fails_cleanly(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(8), 1.0))
        with spawn_workers(1) as pool:
            with ClusterCoordinator(pool.addresses) as coordinator:
                assert coordinator.submit_task("ping", 1).result(timeout=30) == 1
                pool.kill(0)
                with pytest.raises(RuntimeError, match="ball shard failed|no live"):
                    list(
                        coordinator.stream_ball_marginal_tasks(
                            instance, [(node, 1) for node in instance.free_nodes]
                        )
                    )

    def test_runtime_spawns_and_owns_local_workers(self):
        # No addresses: the runtime spawns localhost workers on first use
        # and terminates them at shutdown.
        instance = SamplingInstance(hardcore_model(cycle_graph(8), 1.0), {0: 0})
        serial = dict(Runtime().stream_ball_marginals(instance, instance.free_nodes, 1))
        with Runtime("cluster", n_workers=2) as runtime:
            streamed = dict(
                runtime.stream_ball_marginals(instance, instance.free_nodes, 1)
            )
            pool = runtime._local_pool
            assert pool is not None and len(pool) == 2
        assert streamed == serial
        assert pool._terminated
