"""Unit tests for the monomer--dimer (matching) model."""

import pytest

from repro.graphs import cycle_graph, path_graph, star_graph
from repro.models import matching_model
from repro.models.matching import (
    configuration_to_matching,
    is_valid_matching,
    matching_to_configuration,
)


class TestMatchingModel:
    def test_partition_function_counts_matchings_of_path(self):
        # Matchings of P5 (4 edges in a path): Fibonacci F(6) = 8.
        distribution = matching_model(path_graph(5), edge_weight=1.0)
        assert distribution.partition_function() == pytest.approx(8.0)

    def test_partition_function_counts_matchings_of_cycle(self):
        # Matchings of C5: Lucas number L5 = 11.
        distribution = matching_model(cycle_graph(5), edge_weight=1.0)
        assert distribution.partition_function() == pytest.approx(11.0)

    def test_weighted_partition_function_star(self):
        # A star with k leaves has matchings: empty + k single edges.
        k, lam = 4, 2.0
        distribution = matching_model(star_graph(k), edge_weight=lam)
        assert distribution.partition_function() == pytest.approx(1 + k * lam)

    def test_support_configurations_are_matchings(self):
        graph = cycle_graph(5)
        distribution = matching_model(graph, edge_weight=1.5)
        for configuration in distribution.support():
            edges = configuration_to_matching(distribution, configuration)
            assert is_valid_matching(graph, edges)

    def test_round_trip_configuration_matching(self):
        graph = path_graph(5)
        distribution = matching_model(graph)
        configuration = matching_to_configuration(distribution, [(0, 1), (2, 3)])
        assert sorted(configuration_to_matching(distribution, configuration)) == [(0, 1), (2, 3)]

    def test_matching_to_configuration_rejects_non_edge(self):
        distribution = matching_model(path_graph(4))
        with pytest.raises(ValueError):
            matching_to_configuration(distribution, [(0, 2)])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            matching_model(path_graph(3), edge_weight=0.0)
        import networkx as nx

        empty = nx.Graph()
        empty.add_nodes_from([0, 1])
        with pytest.raises(ValueError):
            matching_model(empty)

    def test_metadata(self):
        distribution = matching_model(star_graph(5), edge_weight=1.0)
        assert distribution.metadata["model"] == "matching"
        assert distribution.metadata["original_max_degree"] == 5
        assert distribution.metadata["locally_admissible"] is True
        assert 0.0 < distribution.metadata["ssm_decay_rate"] < 1.0

    def test_is_valid_matching_helper(self):
        graph = cycle_graph(4)
        assert is_valid_matching(graph, [(0, 1), (2, 3)])
        assert not is_valid_matching(graph, [(0, 1), (1, 2)])
        assert not is_valid_matching(graph, [(0, 2)])
