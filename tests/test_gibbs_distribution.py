"""Unit and property tests for GibbsDistribution."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gibbs import Factor, GibbsDistribution, Pinning
from repro.graphs import cycle_graph, path_graph
from repro.models import coloring_model, hardcore_model, two_spin_model
from tests.conftest import brute_force_marginal, brute_force_partition_function


class TestConstruction:
    def test_rejects_empty_alphabet(self):
        with pytest.raises(ValueError):
            GibbsDistribution(path_graph(2), alphabet=(), factors=())

    def test_rejects_duplicate_alphabet(self):
        with pytest.raises(ValueError):
            GibbsDistribution(path_graph(2), alphabet=(0, 0), factors=())

    def test_rejects_factor_outside_graph(self):
        bad = Factor((7,), lambda a: 1.0)
        with pytest.raises(ValueError):
            GibbsDistribution(path_graph(2), alphabet=(0, 1), factors=(bad,))

    def test_basic_properties(self, hardcore_cycle):
        assert hardcore_cycle.size == 6
        assert hardcore_cycle.alphabet_size == 2
        assert hardcore_cycle.max_degree() == 2
        assert hardcore_cycle.locality() == 1
        assert hardcore_cycle.metadata["model"] == "hardcore"

    def test_factors_at_and_within(self, hardcore_cycle):
        at_zero = hardcore_cycle.factors_at(0)
        assert len(at_zero) == 3  # one vertex activity + two edge constraints
        inside = hardcore_cycle.factors_within({0, 1})
        assert len(inside) == 3  # activities of 0 and 1, plus the edge (0, 1)


class TestWeightsAndProbabilities:
    def test_weight_and_log_weight(self, hardcore_cycle):
        empty = {node: 0 for node in hardcore_cycle.nodes}
        assert hardcore_cycle.weight(empty) == pytest.approx(1.0)
        occupied_zero = dict(empty)
        occupied_zero[0] = 1
        assert hardcore_cycle.weight(occupied_zero) == pytest.approx(0.8)
        assert hardcore_cycle.log_weight(occupied_zero) == pytest.approx(math.log(0.8))

    def test_infeasible_weight_is_zero(self, hardcore_cycle):
        config = {node: 0 for node in hardcore_cycle.nodes}
        config[0] = 1
        config[1] = 1
        assert hardcore_cycle.weight(config) == 0.0
        assert hardcore_cycle.log_weight(config) == float("-inf")

    def test_missing_node_rejected(self, hardcore_cycle):
        with pytest.raises(ValueError):
            hardcore_cycle.weight({0: 1})

    def test_partition_function_matches_enumeration(self, hardcore_cycle):
        assert hardcore_cycle.partition_function() == pytest.approx(
            brute_force_partition_function(hardcore_cycle)
        )

    def test_probability_normalisation(self, hardcore_path):
        total = sum(
            hardcore_path.probability(config) for config in hardcore_path.support()
        )
        assert total == pytest.approx(1.0)

    def test_probability_respects_pinning(self, hardcore_cycle):
        config = {node: 0 for node in hardcore_cycle.nodes}
        assert hardcore_cycle.probability(config, {0: 1}) == 0.0

    def test_probability_infeasible_pinning_raises(self, hardcore_cycle):
        config = {node: 0 for node in hardcore_cycle.nodes}
        with pytest.raises(ValueError):
            hardcore_cycle.probability(config, {0: 1, 1: 1})

    def test_weight_within_ball(self, hardcore_cycle):
        config = {0: 1, 1: 0, 2: 1}
        weight = hardcore_cycle.weight_within({0, 1, 2}, config)
        assert weight == pytest.approx(0.8 * 0.8)


class TestMarginals:
    def test_marginal_matches_enumeration(self, hardcore_cycle):
        expected = brute_force_marginal(hardcore_cycle, 2, {0: 1})
        computed = hardcore_cycle.marginal(2, {0: 1})
        for value in hardcore_cycle.alphabet:
            assert computed[value] == pytest.approx(expected[value])

    def test_joint_marginal_sums_to_one(self, coloring_cycle):
        joint = coloring_cycle.joint_marginal((0, 2))
        assert sum(joint.values()) == pytest.approx(1.0)

    def test_joint_marginal_consistency_with_single(self, hardcore_path):
        joint = hardcore_path.joint_marginal((0, 2))
        single = hardcore_path.marginal(0)
        collapsed = {}
        for (value0, _), probability in joint.items():
            collapsed[value0] = collapsed.get(value0, 0.0) + probability
        for value in hardcore_path.alphabet:
            assert collapsed[value] == pytest.approx(single[value])

    def test_joint_marginal_with_pinned_member(self, hardcore_path):
        joint = hardcore_path.joint_marginal((0, 1), {0: 0})
        assert all(key[0] == 0 for key, p in joint.items() if p > 0)

    def test_conditional_independence_across_separator(self, hardcore_path):
        # On the path 0-1-2-3-4, pinning node 2 separates {0,1} from {3,4}
        # (Proposition 2.1).
        pinning = {2: 0}
        joint = hardcore_path.joint_marginal((0, 4), pinning)
        left = hardcore_path.marginal(0, pinning)
        right = hardcore_path.marginal(4, pinning)
        for (value0, value4), probability in joint.items():
            assert probability == pytest.approx(left[value0] * right[value4], abs=1e-9)


class TestFeasibility:
    def test_feasible_and_locally_feasible(self, hardcore_cycle):
        assert hardcore_cycle.is_feasible({0: 1, 2: 1})
        assert not hardcore_cycle.is_feasible({0: 1, 1: 1})
        assert hardcore_cycle.is_locally_feasible({0: 1, 2: 1})
        assert not hardcore_cycle.is_locally_feasible({0: 1, 1: 1})

    def test_hardcore_is_locally_admissible(self):
        distribution = hardcore_model(cycle_graph(4), fugacity=1.0)
        assert distribution.is_locally_admissible()

    def test_coloring_with_too_few_colors_not_locally_admissible(self):
        # 2-coloring a 4-path: pinning the two ends of an odd-length segment
        # to alternating-incompatible colors is locally feasible but
        # infeasible.
        distribution = coloring_model(path_graph(4), num_colors=2)
        assert distribution.is_locally_admissible() is False

    def test_coloring_with_enough_colors_locally_admissible_small(self):
        distribution = coloring_model(path_graph(4), num_colors=3)
        assert distribution.is_locally_admissible(max_subset_size=3)

    def test_pinning_validation(self, hardcore_cycle):
        with pytest.raises(ValueError):
            hardcore_cycle.partition_function({99: 1})
        with pytest.raises(ValueError):
            hardcore_cycle.partition_function({0: 7})


class TestSupport:
    def test_support_counts_independent_sets(self):
        distribution = hardcore_model(cycle_graph(5), fugacity=1.0)
        # Independent sets of C5: Lucas number L5 = 11.
        assert sum(1 for _ in distribution.support()) == 11

    def test_support_respects_pinning(self, hardcore_cycle):
        for configuration in hardcore_cycle.support({0: 1}):
            assert configuration[0] == 1
            assert configuration[1] == 0 and configuration[5] == 0


class TestDistributionProperties:
    @given(fugacity=st.floats(min_value=0.2, max_value=2.5), n=st.integers(min_value=3, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_chain_rule(self, fugacity, n):
        """mu(sigma) factorises into conditional marginals along any order."""
        distribution = hardcore_model(cycle_graph(n), fugacity=fugacity)
        configuration = {node: 0 for node in distribution.nodes}
        configuration[0] = 1
        probability = distribution.probability(configuration)
        product = 1.0
        pinning = Pinning.empty()
        for node in distribution.nodes:
            marginal = distribution.marginal(node, pinning)
            product *= marginal[configuration[node]]
            pinning = pinning.extend(node, configuration[node])
        assert probability == pytest.approx(product, rel=1e-8)

    @given(beta=st.floats(0.2, 1.5), gamma=st.floats(0.2, 1.5))
    @settings(max_examples=15, deadline=None)
    def test_soft_models_have_full_support(self, beta, gamma):
        distribution = two_spin_model(path_graph(4), beta=beta, gamma=gamma, field=1.0)
        assert sum(1 for _ in distribution.support()) == 2 ** 4
