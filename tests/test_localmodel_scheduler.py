"""Unit tests for the SLOCAL -> LOCAL transformation (Lemma 3.1)."""

import math

import pytest

from repro.graphs import cycle_graph, grid_graph, path_graph
from repro.localmodel import (
    Network,
    SLocalAlgorithm,
    linial_saks_decomposition,
    run_slocal_algorithm,
    simulate_slocal_as_local,
)
from repro.localmodel.scheduler import effective_locality


class GreedyColoring(SLocalAlgorithm):
    passes = 1

    def locality(self, network):
        return 1

    def process(self, pass_index, node, access, rng, network):
        taken = set()
        for other in access.visible_nodes:
            if other == node:
                continue
            state = access.read(other)
            if "output" in state and network.graph.has_edge(node, other):
                taken.add(state["output"])
        color = 0
        while color in taken:
            color += 1
        access.write(node, "output", color)


class ThreePassIdentity(SLocalAlgorithm):
    """A three-pass algorithm used to exercise the multi-pass locality bound."""

    passes = 3

    def locality(self, network):
        return 2

    def process(self, pass_index, node, access, rng, network):
        access.write(node, "output", pass_index)


class TestScheduler:
    def test_simulated_coloring_is_proper(self):
        network = Network(cycle_graph(12), seed=1)
        result = simulate_slocal_as_local(GreedyColoring(), network, seed=1)
        for u, v in network.graph.edges():
            assert result.outputs[u] != result.outputs[v]

    def test_rounds_are_polylog_times_locality(self):
        network = Network(grid_graph(5, 5), seed=0)
        result = simulate_slocal_as_local(GreedyColoring(), network, seed=0)
        n = network.size
        # O(r log^2 n) with r = 1; allow a generous constant.
        assert result.rounds <= 200 * (math.log2(n) ** 2 + 1)
        assert result.rounds >= 1

    def test_ordering_respects_colors(self):
        network = Network(cycle_graph(10), seed=2)
        result = simulate_slocal_as_local(GreedyColoring(), network, seed=2)
        colors = [result.decomposition.color_of(node) for node in result.ordering]
        assert colors == sorted(colors)

    def test_scheduling_failures_come_from_fallback_clusters(self):
        network = Network(cycle_graph(8), seed=0)
        degenerate = linial_saks_decomposition(network.graph, seed=0, max_phases=0)
        # A decomposition of G (not G^2) is fine here because r = 1 clusters
        # are singletons, which are valid in any power graph.
        result = simulate_slocal_as_local(
            GreedyColoring(), network, seed=0, decomposition=degenerate
        )
        assert all(result.scheduling_failures.values())
        assert not result.success
        # The outputs themselves are still a proper coloring: scheduling
        # failures are independent of the algorithm's output.
        for u, v in network.graph.edges():
            assert result.outputs[u] != result.outputs[v]

    def test_effective_locality_multi_pass(self):
        network = Network(path_graph(6))
        assert effective_locality(GreedyColoring(), network) == 1
        assert effective_locality(ThreePassIdentity(), network) == 2 + 2 * 2 * 2

    def test_output_distribution_matches_some_sequential_order(self):
        # Lemma 3.1: conditioned on success the LOCAL simulation equals the
        # SLOCAL algorithm on *some* ordering.  For the deterministic greedy
        # coloring we can check exact equality of outputs.
        network = Network(cycle_graph(9), seed=4)
        scheduled = simulate_slocal_as_local(GreedyColoring(), network, seed=4)
        sequential = run_slocal_algorithm(GreedyColoring(), network, scheduled.ordering)
        assert scheduled.outputs == sequential.outputs
