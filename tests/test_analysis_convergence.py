"""Tests for the multi-chain convergence diagnostics (split R-hat, ESS)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import chains_mixed, effective_sample_size, split_r_hat


def _iid_traces(chains=8, draws=200, seed=0):
    return np.random.default_rng(seed).normal(size=(chains, draws))


class TestSplitRHat:
    def test_iid_chains_are_mixed(self):
        traces = _iid_traces()
        value = split_r_hat(traces)
        assert 0.9 < value < 1.1
        assert chains_mixed(traces)

    def test_disagreeing_chains_are_flagged(self):
        rng = np.random.default_rng(1)
        traces = rng.normal(size=(6, 100)) + 10.0 * np.arange(6)[:, None]
        assert split_r_hat(traces) > 2.0
        assert not chains_mixed(traces)

    def test_trending_chains_are_flagged_by_the_split(self):
        # Every chain drifts identically: whole-chain means agree, but the
        # split halves do not -- exactly what split R-hat exists to catch.
        rng = np.random.default_rng(2)
        drift = np.linspace(0.0, 8.0, 100)
        traces = rng.normal(scale=0.1, size=(6, 100)) + drift
        assert split_r_hat(traces) > 1.5

    def test_short_traces_are_nan(self):
        assert math.isnan(split_r_hat(np.zeros((4, 3))))
        assert not chains_mixed(np.zeros((4, 3)))

    def test_constant_traces(self):
        assert split_r_hat(np.ones((4, 20))) == 1.0
        constant_but_distinct = np.arange(4.0)[:, None] * np.ones((4, 20))
        assert math.isinf(split_r_hat(constant_but_distinct))

    def test_rejects_non_matrix_input(self):
        with pytest.raises(ValueError):
            split_r_hat(np.zeros(10))


class TestEffectiveSampleSize:
    def test_iid_chains_have_near_nominal_ess(self):
        traces = _iid_traces(chains=8, draws=300, seed=3)
        ess = effective_sample_size(traces)
        assert ess > 0.5 * traces.size
        assert ess <= traces.size

    def test_correlated_chains_have_small_ess(self):
        # Strongly autocorrelated AR(1) chains carry far fewer effective
        # samples than their nominal draw count.
        rng = np.random.default_rng(4)
        chains, draws = 6, 300
        traces = np.empty((chains, draws))
        state = rng.normal(size=chains)
        for t in range(draws):
            state = 0.97 * state + rng.normal(scale=0.1, size=chains)
            traces[:, t] = state
        assert effective_sample_size(traces) < 0.2 * traces.size

    def test_short_or_constant_traces_are_nan(self):
        assert math.isnan(effective_sample_size(np.zeros((4, 3))))
        assert math.isnan(effective_sample_size(np.ones((4, 50))))


class TestOnChainTraces:
    def test_luby_traces_mix_with_enough_rounds(self):
        from repro.gibbs import SamplingInstance
        from repro.graphs import cycle_graph
        from repro.models import hardcore_model
        from repro.runtime import ChainBatch

        instance = SamplingInstance(hardcore_model(cycle_graph(8), fugacity=1.0))
        batch = ChainBatch(instance, n_chains=24, seed=5)
        traces = batch.luby_rounds(80, statistic=lambda codes: codes.mean(axis=1))
        value = split_r_hat(traces)
        assert np.isfinite(value)
        # 80 rounds on an 8-cycle is far past mixing for this model.
        assert value < 1.2
        assert effective_sample_size(traces) > 24
