"""Unit and property tests for the Linial--Saks network decomposition."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import cycle_graph, erdos_renyi_graph, grid_graph, path_graph, random_tree
from repro.localmodel import linial_saks_decomposition


class TestDecompositionValidity:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(20),
            cycle_graph(15),
            grid_graph(4, 5),
            random_tree(25, seed=1),
            erdos_renyi_graph(30, 0.15, seed=2),
        ],
    )
    def test_validates_on_various_graphs(self, graph):
        decomposition = linial_saks_decomposition(graph, seed=0)
        decomposition.validate(graph)
        assert set(decomposition.cluster_of) == set(graph.nodes())

    def test_single_node_graph(self):
        graph = nx.Graph()
        graph.add_node(0)
        decomposition = linial_saks_decomposition(graph)
        assert decomposition.num_colors == 1
        assert decomposition.center_of(0) == 0

    def test_empty_graph(self):
        decomposition = linial_saks_decomposition(nx.Graph())
        assert decomposition.num_colors == 0

    def test_logarithmic_quality_on_grid(self):
        graph = grid_graph(6, 6)
        decomposition = linial_saks_decomposition(graph, seed=3)
        n = graph.number_of_nodes()
        bound = 6 * math.log2(n) + 6
        assert decomposition.num_colors <= bound
        assert decomposition.max_cluster_diameter(graph) <= 4 * math.log2(n) + 4

    def test_reproducible_for_fixed_seed(self):
        graph = erdos_renyi_graph(25, 0.2, seed=5)
        first = linial_saks_decomposition(graph, seed=11)
        second = linial_saks_decomposition(graph, seed=11)
        assert first.cluster_of == second.cluster_of
        assert first.color_of_cluster == second.color_of_cluster

    def test_fallback_nodes_are_tracked(self):
        # With a phase budget of zero every node falls back to a singleton
        # cluster; the decomposition stays valid (each singleton gets its own
        # color) and all nodes are flagged.
        graph = cycle_graph(8)
        decomposition = linial_saks_decomposition(graph, seed=0, max_phases=0)
        decomposition.validate(graph)
        assert decomposition.fallback_nodes == set(graph.nodes())

    def test_invalid_survival_probability(self):
        with pytest.raises(ValueError):
            linial_saks_decomposition(path_graph(4), survival_probability=1.5)


class TestDecompositionProperties:
    @given(n=st.integers(min_value=4, max_value=40), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_same_color_clusters_never_adjacent(self, n, seed):
        graph = erdos_renyi_graph(n, 3.0 / n, seed=seed)
        decomposition = linial_saks_decomposition(graph, seed=seed)
        for u, v in graph.edges():
            cluster_u = decomposition.cluster_of[u]
            cluster_v = decomposition.cluster_of[v]
            if cluster_u != cluster_v:
                assert (
                    decomposition.color_of_cluster[cluster_u]
                    != decomposition.color_of_cluster[cluster_v]
                )

    @given(n=st.integers(min_value=3, max_value=30), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_every_node_clustered_once(self, n, seed):
        graph = cycle_graph(max(n, 3))
        decomposition = linial_saks_decomposition(graph, seed=seed)
        members = [node for cluster in decomposition.clusters.values() for node in cluster]
        assert sorted(members, key=repr) == sorted(graph.nodes(), key=repr)
