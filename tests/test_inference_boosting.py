"""Tests for the boosting lemma (Lemma 4.1)."""

import pytest

from repro.analysis import multiplicative_error, total_variation
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.inference import (
    BoostedInference,
    BoundaryPaddedInference,
    ExactInference,
    TwoSpinCorrelationDecayInference,
    correlation_decay_for,
)
from repro.models import coloring_model, hardcore_model


class TestBoostedInference:
    def test_boosting_exact_oracle_stays_exact(self, pinned_hardcore_instance):
        boosted = BoostedInference(ExactInference())
        for node in pinned_hardcore_instance.free_nodes:
            estimate = boosted.marginal(pinned_hardcore_instance, node, 0.1)
            truth = pinned_hardcore_instance.target_marginal(node)
            assert multiplicative_error(estimate, truth) < 1e-9

    def test_multiplicative_error_from_tv_engine_hardcore(self):
        distribution = hardcore_model(cycle_graph(10), fugacity=0.8)
        instance = SamplingInstance(distribution, {0: 1})
        base = BoundaryPaddedInference(decay_rate=0.5)
        boosted = BoostedInference(base)
        epsilon = 0.2
        for node in (3, 5, 8):
            estimate = boosted.marginal(instance, node, epsilon)
            truth = instance.target_marginal(node)
            assert multiplicative_error(estimate, truth) <= epsilon

    def test_boosted_beats_base_in_multiplicative_error(self):
        # The base correlation-decay engine has small TV error but can have a
        # large multiplicative error on near-zero probabilities; the boosted
        # engine controls the ratio.
        distribution = hardcore_model(cycle_graph(10), fugacity=1.0)
        instance = SamplingInstance(distribution, {0: 1})
        base = correlation_decay_for(distribution, decay_rate=0.5)
        boosted = BoostedInference(base)
        epsilon = 0.3
        node = 5
        truth = instance.target_marginal(node)
        boosted_error = multiplicative_error(boosted.marginal(instance, node, epsilon), truth)
        assert boosted_error <= epsilon

    def test_boosted_colorings(self):
        distribution = coloring_model(cycle_graph(7), num_colors=3)
        instance = SamplingInstance(distribution, {0: 2})
        boosted = BoostedInference(BoundaryPaddedInference(decay_rate=0.6))
        epsilon = 0.3
        for node in (2, 4):
            estimate = boosted.marginal(instance, node, epsilon)
            truth = instance.target_marginal(node)
            assert multiplicative_error(estimate, truth) <= epsilon

    def test_pinned_node_returns_point_mass(self, pinned_hardcore_instance):
        boosted = BoostedInference(ExactInference())
        assert boosted.marginal(pinned_hardcore_instance, 0, 0.1)[1] == pytest.approx(1.0)

    def test_locality_is_twice_base_plus_factor_diameter(self):
        distribution = hardcore_model(cycle_graph(12), fugacity=0.8)
        instance = SamplingInstance(distribution)
        base = BoundaryPaddedInference(decay_rate=0.5)
        boosted = BoostedInference(base)
        epsilon = 0.1
        base_radius = base.locality(instance, boosted._base_error(instance, epsilon))
        assert boosted.locality(instance, epsilon) == 2 * base_radius + 1

    def test_zero_probability_values_stay_zero(self):
        # Neighbour of a pinned-occupied node: occupation probability is 0
        # and the boosted estimate must agree exactly (err convention 0/0=1).
        distribution = hardcore_model(path_graph(4), fugacity=1.0)
        instance = SamplingInstance(distribution, {0: 1})
        boosted = BoostedInference(ExactInference())
        estimate = boosted.marginal(instance, 1, 0.1)
        assert estimate[1] == pytest.approx(0.0, abs=1e-12)
