"""Unit tests for the hardcore model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import cycle_graph, path_graph, star_graph
from repro.models import hardcore_model, hardcore_uniqueness_threshold


class TestHardcoreModel:
    def test_support_is_independent_sets(self):
        distribution = hardcore_model(path_graph(3), fugacity=1.0)
        supports = [frozenset(n for n, v in c.items() if v == 1) for c in distribution.support()]
        assert frozenset({0, 2}) in supports
        assert frozenset({0, 1}) not in supports
        assert len(supports) == 5

    def test_weight_is_fugacity_power(self):
        distribution = hardcore_model(path_graph(4), fugacity=2.0)
        config = {0: 1, 1: 0, 2: 1, 3: 0}
        assert distribution.weight(config) == pytest.approx(4.0)

    def test_invalid_fugacity(self):
        with pytest.raises(ValueError):
            hardcore_model(path_graph(3), fugacity=0.0)
        with pytest.raises(ValueError):
            hardcore_model(path_graph(3), fugacity=-1.0)

    def test_metadata_uniqueness_classification(self):
        graph = star_graph(5)  # max degree 5
        below = hardcore_model(graph, fugacity=0.5 * hardcore_uniqueness_threshold(5))
        above = hardcore_model(graph, fugacity=2.0 * hardcore_uniqueness_threshold(5))
        assert below.metadata["uniqueness"] is True
        assert above.metadata["uniqueness"] is False

    def test_metadata_flags(self):
        distribution = hardcore_model(cycle_graph(5), fugacity=1.0)
        assert distribution.metadata["local"] is True
        assert distribution.metadata["locally_admissible"] is True
        assert distribution.metadata["max_degree"] == 2

    def test_partition_function_star(self):
        # Star with k leaves: Z = (1 + lambda)^k + lambda.
        k, lam = 4, 1.5
        distribution = hardcore_model(star_graph(k), fugacity=lam)
        assert distribution.partition_function() == pytest.approx((1 + lam) ** k + lam)

    @given(lam=st.floats(min_value=0.1, max_value=4.0))
    @settings(max_examples=20, deadline=None)
    def test_occupancy_increases_with_fugacity(self, lam):
        base = hardcore_model(cycle_graph(5), fugacity=lam)
        higher = hardcore_model(cycle_graph(5), fugacity=lam * 1.5)
        assert higher.marginal(0)[1] > base.marginal(0)[1]

    def test_single_node_marginal_formula(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_node(0)
        lam = 0.7
        distribution = hardcore_model(graph, fugacity=lam)
        assert distribution.marginal(0)[1] == pytest.approx(lam / (1 + lam))
