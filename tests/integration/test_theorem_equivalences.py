"""Integration tests: the paper's equivalences exercised end to end.

Each test composes at least two of the paper's reductions on a real model
and checks the headline guarantee of the composed pipeline, i.e. these are
the executable counterparts of the theorem statements rather than of the
individual building blocks.
"""

import math

import pytest

pytestmark = pytest.mark.slow

from repro.analysis import (
    empirical_distribution,
    multiplicative_error,
    total_variation,
)
from repro.analysis.distances import configuration_key
from repro.core import (
    boost_inference,
    estimate_partition_function,
    exact_sampling_from_inference,
    inference_from_sampling,
    inference_from_ssm,
    sampling_from_inference,
    ssm_rate_from_inference,
)
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.inference import BoundaryPaddedInference, ExactInference, correlation_decay_for
from repro.models import coloring_model, hardcore_model, matching_model
from repro.sampling import enumerate_target_distribution
from repro.spatialmixing import estimate_decay_rate, ssm_profile


class TestInferenceSamplingEquivalence:
    """Theorems 3.2 + 3.4: the two tasks are inter-reducible."""

    def test_round_trip_inference_to_sampling_to_inference(self):
        distribution = hardcore_model(cycle_graph(8), fugacity=0.9)
        instance = SamplingInstance(distribution, {0: 1})
        base_engine = correlation_decay_for(distribution)

        # Inference -> sampling (Theorem 3.2) ...
        def sampler(inner_instance, error, seed):
            result = sampling_from_inference(
                inner_instance, base_engine, error, seed=seed, local=False
            )
            return result.configuration, result.rounds

        # ... -> inference again (Theorem 3.4).
        recovered_engine = inference_from_sampling(sampler, num_samples=300, seed=0)
        node = 4
        estimate = recovered_engine.marginal(instance, node, 0.1)
        truth = instance.target_marginal(node)
        assert total_variation(estimate, truth) < 0.12

    def test_sampling_from_ssm_derived_inference(self):
        # SSM rate -> inference (Theorem 5.1) -> sampling (Theorem 3.2).
        distribution = coloring_model(cycle_graph(6), num_colors=3)
        instance = SamplingInstance(distribution, {0: 2})
        profile = ssm_profile(distribution, 3, radii=[1, 2])
        rate = min(max(estimate_decay_rate(profile), 0.05), 0.9)
        engine = inference_from_ssm(decay_rate=rate)
        result = sampling_from_inference(instance, engine, 0.1, seed=3, local=True)
        assert distribution.weight(result.configuration) > 0
        assert result.configuration[0] == 2


class TestExactSamplingPipeline:
    """Theorem 4.2 composed with Lemma 4.1: TV inference -> exact sampling."""

    def test_jvv_on_boosted_ssm_inference_is_statistically_exact(self):
        distribution = hardcore_model(cycle_graph(5), fugacity=1.0)
        instance = SamplingInstance(distribution)
        boosted = boost_inference(BoundaryPaddedInference(decay_rate=0.4))
        truth = enumerate_target_distribution(instance)
        accepted = []
        seed = 0
        while len(accepted) < 200 and seed < 900:
            result = exact_sampling_from_inference(
                instance, boosted, seed=seed, local=False, inference_error=1e-3
            )
            if result.success:
                accepted.append(configuration_key(result.configuration))
            seed += 1
        assert len(accepted) >= 200
        empirical = empirical_distribution(accepted)
        noise = 3.0 * math.sqrt(len(truth) / (4.0 * len(accepted)))
        assert total_variation(empirical, truth) < noise

    def test_matching_exact_sampler_through_line_graph(self):
        from repro.models.matching import configuration_to_matching, is_valid_matching

        graph = cycle_graph(6)
        distribution = matching_model(graph, edge_weight=1.2)
        instance = SamplingInstance(distribution)
        engine = correlation_decay_for(distribution)
        result = exact_sampling_from_inference(instance, engine, seed=7, local=True)
        matching = configuration_to_matching(distribution, result.configuration)
        assert is_valid_matching(graph, matching)


class TestCountingSamplingConsistency:
    """Counting (chain rule over inference) agrees with sampling frequencies."""

    def test_partition_function_vs_occupancy(self):
        distribution = hardcore_model(path_graph(6), fugacity=1.0)
        instance = SamplingInstance(distribution)
        counted = estimate_partition_function(instance, ExactInference()).estimate
        assert counted == pytest.approx(distribution.partition_function(), rel=1e-9)

        # The marginal occupancy implied by counting with one node pinned
        # matches the inference marginal: mu_v(1) = lambda * Z(v occupied) / Z.
        pinned = SamplingInstance(distribution, {2: 1})
        z_occupied = estimate_partition_function(pinned, ExactInference()).estimate
        implied = z_occupied / counted
        truth = instance.target_marginal(2)[1]
        assert implied == pytest.approx(truth, rel=1e-9)


class TestSSMCharacterisation:
    """Theorem 5.1 in both directions on the same model family."""

    def test_forward_and_converse_agree_on_hardcore(self):
        distribution = hardcore_model(cycle_graph(12), fugacity=0.7)
        instance = SamplingInstance(distribution, {0: 1})
        engine = BoundaryPaddedInference(decay_rate=0.5)

        # Forward: the engine's locality schedule implies an SSM rate bound.
        implied = [ssm_rate_from_inference(engine, instance, radius=r) for r in (4, 8, 12)]
        assert implied[0] >= implied[1] >= implied[2]

        # Converse: the measured SSM profile yields an engine whose error at
        # the measured radius is consistent with the profile.
        profile = ssm_profile(distribution, 6, radii=[1, 2, 3, 4])
        rate = min(max(estimate_decay_rate(profile), 0.05), 0.95)
        rebuilt = inference_from_ssm(decay_rate=rate)
        estimate = rebuilt.marginal(instance, 6, 0.05)
        truth = instance.target_marginal(6)
        assert total_variation(estimate, truth) <= 0.05

    def test_boosting_preserves_ssm_decay_shape(self):
        # Corollary 5.2: exponential decay in TV iff exponential decay in
        # multiplicative error.  Empirically both columns of the profile
        # should shrink with distance in the uniqueness regime.
        distribution = hardcore_model(cycle_graph(12), fugacity=0.6)
        profile = ssm_profile(distribution, 0, radii=[1, 2, 3, 4, 5])
        tv_values = [row["tv"] for row in profile]
        mult_values = [row["multiplicative"] for row in profile]
        assert tv_values[-1] <= tv_values[0]
        assert mult_values[-1] <= mult_values[0]
