"""End-to-end integration tests across the application models of Section 5."""

import pytest

from repro.analysis import total_variation
from repro.core import LocalSamplingProblem
from repro.graphs import (
    Hypergraph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_bipartite_regular_graph,
    random_tree,
)
from repro.models import (
    coloring_model,
    hardcore_model,
    hypergraph_matching_model,
    ising_model,
    matching_model,
)
from repro.spatialmixing import locality_required
from repro.gibbs import SamplingInstance


class TestApplicationHardcore:
    def test_uniqueness_regime_full_pipeline(self):
        """Hardcore below lambda_c: infer, sample, exact-sample, all coherent."""
        distribution = hardcore_model(random_tree(12, seed=5), fugacity=0.7)
        assert distribution.metadata["uniqueness"]
        problem = LocalSamplingProblem(distribution, pinning={0: 0}, seed=9)

        report = problem.infer(error=0.05)
        for node, marginal in list(report.marginals.items())[:4]:
            assert total_variation(marginal, problem.exact_marginal(node)) <= 0.05

        approx = problem.sample(error=0.1)
        assert distribution.weight(approx.configuration) > 0

        exact = problem.sample_exact()
        assert distribution.weight(exact.configuration) > 0
        assert exact.rounds >= approx.rounds or True  # both polylog; no strict order

    def test_phase_transition_locality_gap(self):
        """Locality needed for accurate inference jumps across the threshold.

        On a long cycle (Delta = 2) the model is always in uniqueness, so we
        use a different knob: a very large fugacity slows the decay markedly
        and the required radius grows, while a small fugacity keeps it tiny.
        The full Omega(diam) lower bound experiment lives in the benchmarks.
        """
        graph = cycle_graph(16)
        easy = SamplingInstance(hardcore_model(graph, fugacity=0.3), {0: 1})
        hard = SamplingInstance(hardcore_model(graph, fugacity=6.0), {0: 1})
        probe = 8
        easy_radius = locality_required(easy, probe, error=0.02, max_radius=8)
        hard_radius = locality_required(hard, probe, error=0.02, max_radius=8)
        assert easy_radius <= hard_radius


class TestApplicationMatchings:
    def test_matching_problem_on_grid(self):
        graph = grid_graph(3, 3)
        distribution = matching_model(graph, edge_weight=1.0)
        problem = LocalSamplingProblem(distribution, seed=1)
        report = problem.infer(error=0.1)
        for node, marginal in list(report.marginals.items())[:4]:
            assert total_variation(marginal, problem.exact_marginal(node)) <= 0.1
        result = problem.sample_exact()
        from repro.models.matching import configuration_to_matching, is_valid_matching

        assert is_valid_matching(graph, configuration_to_matching(distribution, result.configuration))


class TestApplicationColorings:
    def test_triangle_free_coloring_in_ssm_regime(self):
        graph = random_bipartite_regular_graph(2, 5, seed=3)
        q = 5  # q > alpha* * Delta = 3.53
        distribution = coloring_model(graph, num_colors=q)
        assert distribution.metadata["ssm_regime"]
        problem = LocalSamplingProblem(distribution, seed=0)
        result = problem.sample(error=0.1)
        for u, v in graph.edges():
            assert result.configuration[u] != result.configuration[v]


class TestApplicationIsing:
    def test_antiferromagnetic_ising_uniqueness(self):
        distribution = ising_model(cycle_graph(10), interaction=-0.3)
        assert distribution.metadata["uniqueness"]
        problem = LocalSamplingProblem(distribution, seed=4)
        report = problem.infer(error=0.05)
        node = 5
        assert total_variation(report.marginals[node], problem.exact_marginal(node)) <= 0.05


class TestApplicationHypergraphMatchings:
    def test_hypergraph_matching_pipeline(self):
        hypergraph = Hypergraph.random_regular(9, rank=3, num_edges=6, seed=2)
        distribution = hypergraph_matching_model(hypergraph, activity=0.5)
        problem = LocalSamplingProblem(distribution, seed=6)
        result = problem.sample_exact()
        from repro.models.hypergraph_matching import (
            configuration_to_hypergraph_matching,
            is_valid_hypergraph_matching,
        )

        chosen = configuration_to_hypergraph_matching(distribution, result.configuration)
        assert is_valid_hypergraph_matching(hypergraph, chosen)


class TestListColoringSelfReduction:
    def test_pinning_a_coloring_equals_list_coloring(self):
        """Remark 2.2: conditioning = a list-coloring instance on the rest."""
        from repro.models import list_coloring_model

        graph = path_graph(4)
        base = coloring_model(graph, num_colors=3)
        pinned = SamplingInstance(base, {0: 1})
        lists = {0: [1], 1: [0, 2], 2: [0, 1, 2], 3: [0, 1, 2]}
        reduced = SamplingInstance(list_coloring_model(graph, lists))
        for node in (1, 2, 3):
            truth_pinned = pinned.target_marginal(node)
            truth_reduced = reduced.target_marginal(node)
            assert total_variation(truth_pinned, truth_reduced) < 1e-9
