"""Smoke and shape tests for the experiment modules (small configurations).

The full-size experiments run under ``benchmarks/``; these tests run each
experiment at a reduced size to guarantee the modules stay importable,
executable and shape-correct as the library evolves.
"""

import math

import pytest

# The experiment smoke tests run every E1--E12 module end to end; they are
# the heavyweight tail of the suite, so they carry the ``slow`` marker
# (deselect with ``-m "not slow"`` for a fast inner loop).
pytestmark = pytest.mark.slow

from repro.experiments import (
    e01_reduction_sampling,
    e02_reduction_inference,
    e03_boosting,
    e04_jvv,
    e05_ssm_inference,
    e06_hardcore_rounds,
    e07_matching_rounds,
    e08_phase_transition,
    e09_coloring,
    e10_ising,
    e11_decomposition,
    e12_baselines,
    e13_learning,
)
from repro.experiments.common import format_table, geometric_sizes


class TestCommonHelpers:
    def test_format_table_renders_all_rows(self):
        rows = [{"a": 1, "b": 2.34567}, {"a": 10, "b": 0.5}]
        text = format_table(rows, title="demo")
        assert "demo" in text
        assert "2.346" in text
        assert text.count("\n") == 4

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="x")

    def test_geometric_sizes(self):
        sizes = geometric_sizes(8, 2.0, 4)
        assert sizes == [8, 16, 32, 64]
        assert geometric_sizes(3, 1.1, 3) == [3, 4, 5]
        with pytest.raises(ValueError):
            geometric_sizes(0, 2.0, 3)


class TestExperimentSmoke:
    def test_e01(self):
        rows = e01_reduction_sampling.run(errors=(0.2,), samples_per_setting=15)
        assert len(rows) == 2
        assert all(row["rounds"] >= 1 for row in rows)

    def test_e02(self):
        rows = e02_reduction_inference.run(delta=0.1, num_samples=40, probes_per_model=2)
        assert len(rows) == 4
        assert all(0.0 <= row["marginal_tv"] <= 1.0 for row in rows)

    def test_e03(self):
        rows = e03_boosting.run(epsilons=(0.5,), probes_per_model=2)
        assert len(rows) == 2
        assert all(row["boosted_mult_err"] <= 0.5 + 1e-9 for row in rows)

    def test_e04(self):
        exactness = e04_jvv.run_exactness(sizes=(4,), target_accepted=30, max_runs=200)
        assert exactness[0]["accepted"] >= 30
        scaling = e04_jvv.run_failure_scaling(sizes=(4, 6), runs_per_size=10)
        assert len(scaling) == 2
        assert all(0.0 <= row["failure_rate"] <= 1.0 for row in scaling)

    def test_e05(self):
        rows = e05_ssm_inference.run(fugacities=(0.5, 4.0), cycle_size=10, radii=(1, 2, 3))
        assert len(rows) == 2
        assert rows[0]["radius_for_eps"] <= rows[1]["radius_for_eps"]

    def test_e06(self):
        rows = e06_hardcore_rounds.run(sizes=(8, 16))
        assert len(rows) == 2
        assert all(row["sample_feasible"] for row in rows)
        exponent = e06_hardcore_rounds.fitted_exponent(rows, "inference_rounds")
        assert exponent < 1.0

    def test_e07(self):
        rows = e07_matching_rounds.run(degrees=(2, 4), nodes_per_graph=10)
        assert len(rows) == 2
        assert rows[1]["inference_rounds"] >= rows[0]["inference_rounds"]
        valid, rounds = e07_matching_rounds.sample_one_matching(degree=3, nodes=8, seed=1)
        assert valid and rounds >= 1

    def test_e08(self):
        rows = e08_phase_transition.run(fugacity_ratios=(0.3, 3.0), depth=3)
        assert len(rows) == 2
        gap = e08_phase_transition.transition_gap(rows)
        assert gap["min_influence_above"] >= gap["max_influence_below"] - 1e-9

    def test_e09(self):
        rows = e09_coloring.run(color_counts=(3, 4), degree=2, half_size=4, probes=2)
        assert len(rows) == 2
        assert all(row["sample_is_proper"] for row in rows)

    def test_e10(self):
        rows = e10_ising.run(interactions=(-0.1, -0.8), degree=3, nodes=8, depth=3, probes=2)
        assert len(rows) == 2
        assert rows[0]["uniqueness"] is True

    def test_e11(self):
        rows = e11_decomposition.run(sizes=(16, 32))
        assert all(row["colors"] >= 1 for row in rows)
        assert all(row["fallback_nodes"] <= row["n"] for row in rows)

    def test_e12(self):
        rows = e12_baselines.run(cycle_size=5, samples=40, glauber_rounds=(2, 20))
        names = {row["sampler"] for row in rows}
        assert "local-JVV (Thm 4.2)" in names
        assert any(name.startswith("luby-glauber") for name in names)
        assert all(0.0 <= row["tv_to_target"] <= 1.0 for row in rows)

    def test_e13(self):
        rows = e13_learning.run(
            nodes=8,
            samples=120,
            burn_in=120,
            resample=120,
            methods=("pl", "cd"),
            runtimes=("serial", "batched"),
            probes=2,
            cd_max_iter=20,
            cd_n_negative=16,
        )
        assert len(rows) == 4
        assert all(0.0 <= row["exact_marginal_tv"] <= 1.0 for row in rows)
        assert all(0.0 <= row["sampled_marginal_tv"] <= 1.0 for row in rows)
        invariance = e13_learning.backend_invariance(rows)
        assert invariance == {"cd": True, "pl": True}
