"""Tests for the sampling => inference reduction (Theorem 3.4)."""

import pytest

from repro.analysis import total_variation
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.inference import ExactInference
from repro.models import hardcore_model
from repro.sampling import InferenceFromSampling, sample_approximate_slocal
from repro.sampling.exact import ExactSampler


def exact_sampler_callable(instance, error, seed):
    """An approximate sampler backed by exhaustive enumeration (zero error)."""
    sampler = ExactSampler(instance, seed=seed)
    return sampler.sample(), 1


def sequential_sampler_callable(instance, error, seed):
    """The Theorem 3.2 sampler, exposed in the callable form Theorem 3.4 needs."""
    result = sample_approximate_slocal(instance, ExactInference(), error, seed=seed)
    return result.configuration, result.rounds


class TestInferenceFromSampling:
    def test_marginals_from_exact_sampler(self):
        distribution = hardcore_model(cycle_graph(6), fugacity=1.0)
        instance = SamplingInstance(distribution, {0: 1})
        engine = InferenceFromSampling(exact_sampler_callable, num_samples=600, seed=0)
        for node in (2, 3):
            estimate = engine.marginal(instance, node, 0.1)
            truth = instance.target_marginal(node)
            assert total_variation(estimate, truth) < 0.08

    def test_marginals_from_sequential_sampler(self):
        distribution = hardcore_model(path_graph(5), fugacity=1.2)
        instance = SamplingInstance(distribution)
        engine = InferenceFromSampling(sequential_sampler_callable, num_samples=400, seed=3)
        estimate = engine.marginal(instance, 2, 0.1)
        truth = instance.target_marginal(2)
        assert total_variation(estimate, truth) < 0.1

    def test_pinned_node_short_circuits(self):
        distribution = hardcore_model(path_graph(4), fugacity=1.0)
        instance = SamplingInstance(distribution, {1: 0})
        calls = []

        def counting_sampler(inner_instance, error, seed):
            calls.append(seed)
            return ExactSampler(inner_instance, seed=seed).sample(), 1

        engine = InferenceFromSampling(counting_sampler, num_samples=10)
        assert engine.marginal(instance, 1, 0.1)[0] == pytest.approx(1.0)
        assert not calls

    def test_locality_reports_sampler_rounds(self):
        distribution = hardcore_model(path_graph(4), fugacity=1.0)
        instance = SamplingInstance(distribution)

        def rounds_seven(inner_instance, error, seed):
            return ExactSampler(inner_instance, seed=seed).sample(), 7

        engine = InferenceFromSampling(rounds_seven, num_samples=5)
        assert engine.locality(instance, 0.1) == 7

    def test_sample_count_derived_from_error(self):
        distribution = hardcore_model(path_graph(3), fugacity=1.0)
        instance = SamplingInstance(distribution)
        engine = InferenceFromSampling(exact_sampler_callable)
        assert engine._samples_for(instance, 0.05) > engine._samples_for(instance, 0.5)
