"""Unit tests for the line-graph and hypergraph dualities."""

import networkx as nx
import pytest

from repro.graphs import (
    Hypergraph,
    cycle_graph,
    hypergraph_dual_graph,
    line_graph_with_map,
    path_graph,
    star_graph,
)
from repro.graphs.duality import matching_to_line_graph_configuration


class TestLineGraph:
    def test_line_graph_of_path(self):
        line, mapping = line_graph_with_map(path_graph(4))
        assert line.number_of_nodes() == 3
        assert line.number_of_edges() == 2
        assert set(mapping.values()) == {(0, 1), (1, 2), (2, 3)}

    def test_line_graph_of_cycle_is_cycle(self):
        line, _ = line_graph_with_map(cycle_graph(5))
        assert line.number_of_nodes() == 5
        assert line.number_of_edges() == 5
        assert nx.is_isomorphic(line, cycle_graph(5))

    def test_line_graph_of_star_is_complete(self):
        line, _ = line_graph_with_map(star_graph(4))
        assert line.number_of_edges() == 6

    def test_matching_translation_round_trip(self):
        graph = path_graph(5)
        configuration = matching_to_line_graph_configuration(graph, [(0, 1), (2, 3)])
        assert sum(configuration.values()) == 2

    def test_matching_translation_rejects_non_edges(self):
        with pytest.raises(ValueError):
            matching_to_line_graph_configuration(path_graph(4), [(0, 3)])


class TestHypergraph:
    def test_rank_and_degree(self):
        hypergraph = Hypergraph(
            vertices=[0, 1, 2, 3, 4],
            hyperedges=[frozenset({0, 1, 2}), frozenset({2, 3}), frozenset({3, 4})],
        )
        assert hypergraph.rank == 3
        assert hypergraph.max_degree == 2

    def test_empty_hyperedge_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(vertices=[0, 1], hyperedges=[frozenset()])

    def test_unknown_vertex_rejected(self):
        with pytest.raises(ValueError):
            Hypergraph(vertices=[0, 1], hyperedges=[frozenset({0, 5})])

    def test_from_graph(self):
        hypergraph = Hypergraph.from_graph(cycle_graph(4))
        assert hypergraph.rank == 2
        assert len(hypergraph.hyperedges) == 4

    def test_random_regular_hypergraph(self):
        hypergraph = Hypergraph.random_regular(10, rank=3, num_edges=5, seed=1)
        assert all(len(edge) == 3 for edge in hypergraph.hyperedges)
        assert len(hypergraph.hyperedges) == 5

    def test_dual_graph_adjacency(self):
        hypergraph = Hypergraph(
            vertices=[0, 1, 2, 3, 4],
            hyperedges=[frozenset({0, 1}), frozenset({1, 2}), frozenset({3, 4})],
        )
        dual, mapping = hypergraph_dual_graph(hypergraph)
        assert dual.number_of_nodes() == 3
        assert dual.has_edge(0, 1)
        assert not dual.has_edge(0, 2)
        assert mapping[2] == frozenset({3, 4})
