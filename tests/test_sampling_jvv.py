"""Tests for the distributed JVV sampler (Theorem 4.2)."""

import math

import pytest

from repro.analysis import empirical_distribution, total_variation
from repro.analysis.distances import configuration_key
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.inference import ExactInference, correlation_decay_for
from repro.models import coloring_model, hardcore_model
from repro.sampling import enumerate_target_distribution, sample_exact_local, sample_exact_slocal


class TestJVVMechanics:
    def test_outputs_are_feasible_and_respect_pinning(self):
        distribution = hardcore_model(cycle_graph(7), fugacity=1.0)
        instance = SamplingInstance(distribution, {0: 1})
        engine = ExactInference()
        for seed in range(8):
            result = sample_exact_slocal(instance, engine, seed=seed)
            assert distribution.weight(result.configuration) > 0
            assert result.configuration[0] == 1

    def test_acceptance_probability_with_exact_oracle(self):
        # With a zero-error oracle every node's acceptance probability is
        # exactly exp(-3/n^2) (the slack factor of equation (9)).
        from repro.localmodel import Network, run_slocal_algorithm
        from repro.sampling.jvv import LocalJVVSampler

        distribution = hardcore_model(cycle_graph(6), fugacity=1.2)
        instance = SamplingInstance(distribution)
        algorithm = LocalJVVSampler(instance, ExactInference())
        network = Network(instance.graph, seed=1)
        result = run_slocal_algorithm(algorithm, network)
        expected = math.exp(-3.0 / 6 ** 2)
        for node in network.nodes:
            assert result.states[node]["acceptance"] == pytest.approx(expected, rel=1e-6)

    def test_failure_probability_decreases_with_size(self):
        # Total success probability is about exp(-3/n), so failures per run
        # shrink as n grows; compare empirical failure frequencies.
        engine = ExactInference()

        def failure_rate(n, runs=60):
            distribution = hardcore_model(cycle_graph(n), fugacity=1.0)
            instance = SamplingInstance(distribution)
            failures = 0
            for seed in range(runs):
                if not sample_exact_slocal(instance, engine, seed=seed).success:
                    failures += 1
            return failures / runs

        small, large = failure_rate(4), failure_rate(10)
        assert large <= small + 0.15

    def test_rounds_scale_with_inference_locality(self):
        distribution = hardcore_model(cycle_graph(10), fugacity=0.8)
        instance = SamplingInstance(distribution)
        engine = correlation_decay_for(distribution, decay_rate=0.5, max_depth=3)
        result = sample_exact_slocal(instance, engine, seed=0)
        assert result.rounds == 3 * engine.locality(instance, 1.0 / 10 ** 3) + 1

    def test_local_simulation_adds_overhead_and_keeps_feasibility(self):
        distribution = hardcore_model(cycle_graph(8), fugacity=1.0)
        instance = SamplingInstance(distribution)
        engine = correlation_decay_for(distribution, max_depth=2)
        slocal = sample_exact_slocal(instance, engine, seed=2)
        local = sample_exact_local(instance, engine, seed=2)
        assert local.rounds > slocal.rounds
        assert distribution.weight(local.configuration) > 0


@pytest.mark.slow
class TestJVVExactness:
    @pytest.mark.parametrize(
        "factory,pinning",
        [
            (lambda: hardcore_model(cycle_graph(5), fugacity=1.0), {}),
            (lambda: hardcore_model(path_graph(5), fugacity=1.6), {0: 1}),
            (lambda: coloring_model(path_graph(4), num_colors=3), {0: 2}),
        ],
    )
    def test_conditional_output_distribution_matches_target(self, factory, pinning):
        """Conditioned on success the output follows mu^tau exactly.

        Statistical check: with several hundred accepted runs the empirical
        distribution must be within sampling noise of the enumerated target.
        """
        distribution = factory()
        instance = SamplingInstance(distribution, pinning)
        engine = ExactInference()
        truth = enumerate_target_distribution(instance)
        accepted = []
        seed = 0
        while len(accepted) < 260 and seed < 1200:
            result = sample_exact_slocal(instance, engine, seed=seed)
            if result.success:
                accepted.append(configuration_key(result.configuration))
            seed += 1
        assert len(accepted) >= 260
        empirical = empirical_distribution(accepted)
        noise = 3.0 * math.sqrt(len(truth) / (4.0 * len(accepted)))
        assert total_variation(empirical, truth) < noise

    def test_approximate_engine_still_produces_feasible_samples(self):
        distribution = hardcore_model(cycle_graph(8), fugacity=0.9)
        instance = SamplingInstance(distribution)
        engine = correlation_decay_for(distribution, max_depth=4)
        successes = 0
        for seed in range(20):
            result = sample_exact_slocal(instance, engine, seed=seed)
            if result.success:
                successes += 1
            assert distribution.weight(result.configuration) > 0
        assert successes > 0


class TestJVVKernel:
    """The rejection pass as a chain kernel (repro.sampling.kernels)."""

    def _instances(self):
        return [
            SamplingInstance(hardcore_model(cycle_graph(9), fugacity=1.3), {0: 1}),
            SamplingInstance(coloring_model(path_graph(6), num_colors=3), {0: 2}),
        ]

    def test_batched_failure_counts_match_the_serial_pass(self):
        """Per-chain failure counts of a batched JVV run equal the serial
        rejection pass seeded with seeds[c].  (The *states* sweep lives in
        the cross-backend conformance harness, tests/test_conformance.py;
        the failure-count statistic is JVV-specific and stays here.)"""
        from repro.runtime import ChainBatch, chain_seed_sequences
        from repro.sampling.jvv import JVV_KERNEL, jvv_rejection_sample

        for instance in self._instances():
            seeds = chain_seed_sequences(5, 6)
            steps = 3 * len(instance.free_nodes) + 2
            serial = [
                jvv_rejection_sample(instance, steps, seed=seed, return_failures=True)
                for seed in seeds
            ]
            batch = ChainBatch(instance, seeds=seeds)
            batch.advance(JVV_KERNEL, steps)
            assert batch.configurations() == [state for state, _ in serial]
            assert JVV_KERNEL.failure_counts(batch).tolist() == [
                failures for _, failures in serial
            ]

    def test_acceptance_matches_local_jvv_sampler_pass(self):
        """The kernel's gate is exactly the pass-3 acceptance of
        LocalJVVSampler with an exact oracle (equation (9) collapsed to
        the slack constant e^{-3/n^2})."""
        from repro.localmodel import Network, run_slocal_algorithm
        from repro.sampling.jvv import JVV_KERNEL, LocalJVVSampler

        distribution = hardcore_model(cycle_graph(7), fugacity=1.1)
        instance = SamplingInstance(distribution)
        algorithm = LocalJVVSampler(instance, ExactInference())
        network = Network(instance.graph, seed=3)
        result = run_slocal_algorithm(algorithm, network)
        kernel_gate = JVV_KERNEL.acceptance_probability(instance)
        for node in network.nodes:
            assert result.states[node]["acceptance"] == pytest.approx(
                kernel_gate, rel=1e-12
            )

    def test_failure_law_tracks_the_prediction(self):
        """The rejected-chain fraction of one full scan follows 1 - e^{-3/n}."""
        from repro.runtime import ChainBatch, chain_seed_sequences
        from repro.sampling.jvv import JVV_KERNEL

        distribution = hardcore_model(cycle_graph(20), fugacity=1.0)
        instance = SamplingInstance(distribution)
        steps = len(instance.free_nodes)
        batch = ChainBatch(instance, seeds=chain_seed_sequences(1, 200))
        batch.advance(JVV_KERNEL, steps)
        failed = (JVV_KERNEL.failure_counts(batch) > 0).mean()
        predicted = 1.0 - math.exp(-3.0 * steps / instance.size ** 2)
        assert abs(failed - predicted) < 0.12

    def test_chain_stats_uniform_across_runtimes(self):
        """States AND failure counts are bit-identical whichever runtime
        computes them (batched masks vs the serial reference)."""
        from repro.runtime import Runtime
        from repro.sampling.jvv import jvv_chain_stats

        instance = SamplingInstance(hardcore_model(cycle_graph(7), fugacity=1.2))
        serial = jvv_chain_stats(instance, 10, n_chains=5, seed=1)
        batched = jvv_chain_stats(
            instance, 10, n_chains=5, seed=1, runtime=Runtime("batched")
        )
        assert serial == batched

    def test_runtime_knob_routes_through_run_chains(self):
        from repro.runtime import Runtime, chain_seed_sequences
        from repro.sampling.jvv import jvv_rejection_sample

        instance = SamplingInstance(hardcore_model(cycle_graph(8), fugacity=1.0))
        seeds = chain_seed_sequences(2, 4)
        serial = [jvv_rejection_sample(instance, 12, seed=seed) for seed in seeds]
        with Runtime("batched", n_chains=4) as runtime:
            assert runtime.run_chains("jvv", instance, 12, seed=2) == serial

    def test_rejections_leave_the_proposal_applied(self):
        """The sigma-sequence advances regardless of the flags (pass-3
        semantics): an always-reject gate and an always-accept gate consume
        identical RNG streams, so they must produce IDENTICAL states --
        only the failure counts differ (all steps vs none)."""
        from repro.runtime import ChainBatch, chain_seed_sequences
        from repro.sampling.jvv import JVVKernel

        class AlwaysReject(JVVKernel):
            name = "jvv-always-reject"

            def acceptance_probability(self, instance):
                return 0.0

        class AlwaysAccept(JVVKernel):
            name = "jvv-always-accept"

            def acceptance_probability(self, instance):
                return 1.0

        instance = SamplingInstance(hardcore_model(cycle_graph(6), fugacity=1.4))
        steps = 30
        reject_state, reject_failures = AlwaysReject().serial_scan(
            instance, steps, seed=9
        )
        accept_state, accept_failures = AlwaysAccept().serial_scan(
            instance, steps, seed=9
        )
        assert reject_state == accept_state  # proposals applied either way
        assert reject_failures == steps and accept_failures == 0
        assert instance.distribution.weight(reject_state) > 0
        # Same contract on the batched path, via the acceptance masks.
        seeds = chain_seed_sequences(9, 3)
        rejecting = ChainBatch(instance, seeds=seeds)
        accepting = ChainBatch(instance, seeds=seeds)
        reject_kernel, accept_kernel = AlwaysReject(), AlwaysAccept()
        rejecting.advance(reject_kernel, steps)
        accepting.advance(accept_kernel, steps)
        assert rejecting.configurations() == accepting.configurations()
        assert reject_kernel.failure_counts(rejecting).tolist() == [steps] * 3
        assert accept_kernel.failure_counts(accepting).tolist() == [0] * 3
