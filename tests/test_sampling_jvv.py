"""Tests for the distributed JVV sampler (Theorem 4.2)."""

import math

import pytest

from repro.analysis import empirical_distribution, total_variation
from repro.analysis.distances import configuration_key
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.inference import ExactInference, correlation_decay_for
from repro.models import coloring_model, hardcore_model
from repro.sampling import enumerate_target_distribution, sample_exact_local, sample_exact_slocal


class TestJVVMechanics:
    def test_outputs_are_feasible_and_respect_pinning(self):
        distribution = hardcore_model(cycle_graph(7), fugacity=1.0)
        instance = SamplingInstance(distribution, {0: 1})
        engine = ExactInference()
        for seed in range(8):
            result = sample_exact_slocal(instance, engine, seed=seed)
            assert distribution.weight(result.configuration) > 0
            assert result.configuration[0] == 1

    def test_acceptance_probability_with_exact_oracle(self):
        # With a zero-error oracle every node's acceptance probability is
        # exactly exp(-3/n^2) (the slack factor of equation (9)).
        from repro.localmodel import Network, run_slocal_algorithm
        from repro.sampling.jvv import LocalJVVSampler

        distribution = hardcore_model(cycle_graph(6), fugacity=1.2)
        instance = SamplingInstance(distribution)
        algorithm = LocalJVVSampler(instance, ExactInference())
        network = Network(instance.graph, seed=1)
        result = run_slocal_algorithm(algorithm, network)
        expected = math.exp(-3.0 / 6 ** 2)
        for node in network.nodes:
            assert result.states[node]["acceptance"] == pytest.approx(expected, rel=1e-6)

    def test_failure_probability_decreases_with_size(self):
        # Total success probability is about exp(-3/n), so failures per run
        # shrink as n grows; compare empirical failure frequencies.
        engine = ExactInference()

        def failure_rate(n, runs=60):
            distribution = hardcore_model(cycle_graph(n), fugacity=1.0)
            instance = SamplingInstance(distribution)
            failures = 0
            for seed in range(runs):
                if not sample_exact_slocal(instance, engine, seed=seed).success:
                    failures += 1
            return failures / runs

        small, large = failure_rate(4), failure_rate(10)
        assert large <= small + 0.15

    def test_rounds_scale_with_inference_locality(self):
        distribution = hardcore_model(cycle_graph(10), fugacity=0.8)
        instance = SamplingInstance(distribution)
        engine = correlation_decay_for(distribution, decay_rate=0.5, max_depth=3)
        result = sample_exact_slocal(instance, engine, seed=0)
        assert result.rounds == 3 * engine.locality(instance, 1.0 / 10 ** 3) + 1

    def test_local_simulation_adds_overhead_and_keeps_feasibility(self):
        distribution = hardcore_model(cycle_graph(8), fugacity=1.0)
        instance = SamplingInstance(distribution)
        engine = correlation_decay_for(distribution, max_depth=2)
        slocal = sample_exact_slocal(instance, engine, seed=2)
        local = sample_exact_local(instance, engine, seed=2)
        assert local.rounds > slocal.rounds
        assert distribution.weight(local.configuration) > 0


@pytest.mark.slow
class TestJVVExactness:
    @pytest.mark.parametrize(
        "factory,pinning",
        [
            (lambda: hardcore_model(cycle_graph(5), fugacity=1.0), {}),
            (lambda: hardcore_model(path_graph(5), fugacity=1.6), {0: 1}),
            (lambda: coloring_model(path_graph(4), num_colors=3), {0: 2}),
        ],
    )
    def test_conditional_output_distribution_matches_target(self, factory, pinning):
        """Conditioned on success the output follows mu^tau exactly.

        Statistical check: with several hundred accepted runs the empirical
        distribution must be within sampling noise of the enumerated target.
        """
        distribution = factory()
        instance = SamplingInstance(distribution, pinning)
        engine = ExactInference()
        truth = enumerate_target_distribution(instance)
        accepted = []
        seed = 0
        while len(accepted) < 260 and seed < 1200:
            result = sample_exact_slocal(instance, engine, seed=seed)
            if result.success:
                accepted.append(configuration_key(result.configuration))
            seed += 1
        assert len(accepted) >= 260
        empirical = empirical_distribution(accepted)
        noise = 3.0 * math.sqrt(len(truth) / (4.0 * len(accepted)))
        assert total_variation(empirical, truth) < noise

    def test_approximate_engine_still_produces_feasible_samples(self):
        distribution = hardcore_model(cycle_graph(8), fugacity=0.9)
        instance = SamplingInstance(distribution)
        engine = correlation_decay_for(distribution, max_depth=4)
        successes = 0
        for seed in range(20):
            result = sample_exact_slocal(instance, engine, seed=seed)
            if result.success:
                successes += 1
            assert distribution.weight(result.configuration) > 0
        assert successes > 0
