"""Unit tests for weighted hypergraph matchings."""

import pytest

from repro.graphs import Hypergraph, path_graph
from repro.models import hypergraph_matching_model, matching_model
from repro.models.hypergraph_matching import (
    configuration_to_hypergraph_matching,
    is_valid_hypergraph_matching,
)


def small_hypergraph():
    return Hypergraph(
        vertices=list(range(6)),
        hyperedges=[
            frozenset({0, 1, 2}),
            frozenset({2, 3, 4}),
            frozenset({4, 5, 0}),
            frozenset({1, 3, 5}),
        ],
    )


class TestHypergraphMatchingModel:
    def test_partition_function_by_hand(self):
        # The four hyperedges above pairwise intersect, so the only matchings
        # are the empty one and the four singletons.
        lam = 1.5
        distribution = hypergraph_matching_model(small_hypergraph(), activity=lam)
        assert distribution.partition_function() == pytest.approx(1 + 4 * lam)

    def test_disjoint_hyperedges_allow_pairs(self):
        hypergraph = Hypergraph(
            vertices=list(range(6)),
            hyperedges=[frozenset({0, 1, 2}), frozenset({3, 4, 5})],
        )
        distribution = hypergraph_matching_model(hypergraph, activity=1.0)
        assert distribution.partition_function() == pytest.approx(4.0)

    def test_support_configurations_are_matchings(self):
        hypergraph = small_hypergraph()
        distribution = hypergraph_matching_model(hypergraph, activity=2.0)
        for configuration in distribution.support():
            chosen = configuration_to_hypergraph_matching(distribution, configuration)
            assert is_valid_hypergraph_matching(hypergraph, chosen)

    def test_rank_two_hypergraph_matches_graph_matching(self):
        graph = path_graph(4)
        as_hypergraph = Hypergraph.from_graph(graph)
        dual_model = hypergraph_matching_model(as_hypergraph, activity=1.3)
        edge_model = matching_model(graph, edge_weight=1.3)
        assert dual_model.partition_function() == pytest.approx(
            edge_model.partition_function()
        )

    def test_metadata_threshold(self):
        distribution = hypergraph_matching_model(small_hypergraph(), activity=0.1)
        assert distribution.metadata["rank"] == 3
        assert distribution.metadata["uniqueness_threshold"] > 0
        assert distribution.metadata["model"] == "hypergraph-matching"

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            hypergraph_matching_model(small_hypergraph(), activity=0.0)
        with pytest.raises(ValueError):
            hypergraph_matching_model(Hypergraph(vertices=[0, 1], hyperedges=[]))

    def test_is_valid_hypergraph_matching_rejects_overlap(self):
        hypergraph = small_hypergraph()
        assert is_valid_hypergraph_matching(hypergraph, [frozenset({0, 1, 2})])
        assert not is_valid_hypergraph_matching(
            hypergraph, [frozenset({0, 1, 2}), frozenset({2, 3, 4})]
        )
        assert not is_valid_hypergraph_matching(hypergraph, [frozenset({0, 1})])
