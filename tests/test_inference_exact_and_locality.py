"""Unit tests for the exact-inference oracle and the locality schedules."""

import math

import pytest

from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.inference import ExactInference, locality_for_error
from repro.inference.locality import error_at_locality
from repro.models import hardcore_model


class TestExactInference:
    def test_matches_ground_truth(self, pinned_hardcore_instance):
        engine = ExactInference()
        for node in pinned_hardcore_instance.free_nodes:
            estimate = engine.marginal(pinned_hardcore_instance, node, 0.1)
            truth = pinned_hardcore_instance.target_marginal(node)
            for value, probability in truth.items():
                assert estimate[value] == pytest.approx(probability)

    def test_locality_is_whole_graph(self, hardcore_instance):
        assert ExactInference().locality(hardcore_instance, 0.01) == hardcore_instance.size

    def test_marginals_helper_covers_free_nodes(self, pinned_hardcore_instance):
        engine = ExactInference()
        marginals = engine.marginals(pinned_hardcore_instance, 0.1)
        assert set(marginals) == set(pinned_hardcore_instance.free_nodes)
        for marginal in marginals.values():
            assert sum(marginal.values()) == pytest.approx(1.0)


class TestLocalitySchedule:
    def test_radius_grows_logarithmically_in_one_over_error(self):
        small = locality_for_error(0.5, size=100, error=1e-1)
        tiny = locality_for_error(0.5, size=100, error=1e-4)
        assert tiny > small
        assert tiny - small == pytest.approx(math.log(1e3) / math.log(2.0), abs=2)

    def test_radius_grows_logarithmically_in_n(self):
        assert locality_for_error(0.5, 10_000, 0.01) - locality_for_error(0.5, 100, 0.01) <= 8

    def test_slow_decay_needs_more_rounds(self):
        assert locality_for_error(0.9, 100, 0.01) > locality_for_error(0.3, 100, 0.01)

    def test_zero_rate_needs_minimum_rounds(self):
        assert locality_for_error(0.0, 100, 0.01) == 1
        assert locality_for_error(0.0, 100, 0.01, minimum=3) == 3

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            locality_for_error(1.0, 10, 0.1)
        with pytest.raises(ValueError):
            locality_for_error(0.5, 10, 0.0)
        with pytest.raises(ValueError):
            locality_for_error(0.5, 0, 0.1)

    def test_error_at_locality_inverts_schedule(self):
        rate, n = 0.6, 50
        radius = locality_for_error(rate, n, 0.01)
        assert error_at_locality(rate, n, radius) <= 0.01
        assert error_at_locality(rate, n, radius - 2) > 0.01

    def test_error_at_locality_validation(self):
        with pytest.raises(ValueError):
            error_at_locality(0.5, 10, -1)
        assert error_at_locality(0.0, 10, 3) == 0.0
