"""Chaos and security tests: the cluster under deterministic injected faults.

The paper's algorithms are Las Vegas: a failure must be locally
certifiable and must never corrupt the output of non-failed nodes.
:mod:`tests.test_failure_injection` enforces that at the algorithm layer;
this suite enforces it for the ``runtime="cluster"`` transport under
*injected* infrastructure faults.  Every scenario asserts one of exactly
two outcomes:

* **bit-identical**: the merged result equals the serial loop, despite
  the fault (worker death, tampered frame, reconnection, rebalancing);
* **clean failure**: an attributed exception (:class:`ClusterError`,
  :class:`ProtocolError`, :class:`AuthenticationError`) *before* any
  untrusted payload is unpickled -- never a hang, never a silent wrong
  answer.

Faults come from the seeded :class:`repro.cluster.chaos.FaultPlan`, so a
failing scenario reproduces byte-for-byte.  In-process
:class:`~repro.cluster.worker.ClusterWorker` threads back the fast tests;
``slow``-marked tests arm real subprocess workers (the only safe place
for ``kill_after_tasks``, which is a hard ``os._exit``).
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time

import pytest

from repro.cluster import protocol
from repro.cluster.chaos import FaultPlan
from repro.cluster.coordinator import ClusterCoordinator, ClusterError
from repro.cluster.local import spawn_workers
from repro.cluster.protocol import AuthenticationError
from repro.cluster.worker import ClusterWorker
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.inference.ssm_inference import padded_ball_marginal
from repro.models import coloring_model, hardcore_model
from repro.runtime import Runtime

KEY = "chaos-suite-secret"


def _serve(worker: ClusterWorker) -> threading.Thread:
    thread = threading.Thread(target=worker.serve_forever, daemon=True)
    thread.start()
    return thread


def _wait_until(predicate, timeout: float = 10.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


def _small_instance():
    distribution = coloring_model(cycle_graph(10), 3)
    return SamplingInstance(distribution, {0: 1})


def _serial_marginals(instance, radius=2):
    serial = {
        node: padded_ball_marginal(instance, node, radius)
        for node in instance.free_nodes
    }
    instance.distribution.ball_cache().clear()
    return serial


def _explode():
    raise AssertionError("untrusted payload was unpickled")


class _Exploding:
    """Pickles fine; unpickling executes :func:`_explode` (the RCE canary)."""

    def __reduce__(self):
        return (_explode, ())


# ----------------------------------------------------------------------
# FaultPlan: the injection harness itself is deterministic
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip_preserves_every_field(self):
        plan = FaultPlan(
            seed=7,
            kill_after_tasks=3,
            stall_heartbeats_after=1,
            drop_frames=(2, 5),
            delay_frames={4: 0.25},
            truncate_frames=(6,),
            corrupt_frames=(7,),
            corrupt_target="magic",
            frame_kinds=(protocol.RESULT, protocol.HEARTBEAT),
        )
        clone = FaultPlan.from_json(plan.to_json())
        for name in (
            "seed",
            "kill_after_tasks",
            "stall_heartbeats_after",
            "drop_frames",
            "delay_frames",
            "truncate_frames",
            "corrupt_frames",
            "corrupt_target",
            "frame_kinds",
        ):
            assert getattr(clone, name) == getattr(plan, name), name
        assert clone == plan
        assert clone != FaultPlan(seed=8)

    def test_frame_actions_fire_on_the_scheduled_frames_only(self):
        plan = FaultPlan(drop_frames=(2,), truncate_frames=(4,))
        actions = [plan.frame_action(protocol.RESULT) for _ in range(5)]
        assert actions[0] is None and actions[2] is None and actions[4] is None
        assert actions[1] == ("drop",)
        assert actions[3][0] == "truncate" and actions[3][1] >= 1

    def test_frame_kinds_filter_what_counts(self):
        plan = FaultPlan(drop_frames=(1,), frame_kinds=(protocol.HEARTBEAT,))
        # RESULT frames neither count nor receive actions.
        assert plan.frame_action(protocol.RESULT) is None
        assert plan.frame_action(protocol.HEARTBEAT) == ("drop",)

    def test_corruption_position_is_seeded(self):
        first = FaultPlan(seed=11, corrupt_frames=(1,)).frame_action(protocol.TASK)
        second = FaultPlan(seed=11, corrupt_frames=(1,)).frame_action(protocol.TASK)
        assert first == second and first[0] == "corrupt"

    def test_kill_and_stall_counters(self):
        plan = FaultPlan(kill_after_tasks=2, stall_heartbeats_after=1)
        assert not plan.task_completed()
        assert plan.task_completed()
        assert not plan.stall_heartbeat()
        assert plan.stall_heartbeat()

    def test_unknown_corrupt_target_is_rejected(self):
        with pytest.raises(ValueError, match="corrupt_target"):
            FaultPlan(corrupt_target="header")


# ----------------------------------------------------------------------
# authenticated frames (HMAC-SHA256) -- fail closed before unpickling
# ----------------------------------------------------------------------
class TestAuthenticatedProtocol:
    def _pair(self):
        return socket.socketpair()

    def test_keyed_round_trip(self):
        left, right = self._pair()
        key = protocol.normalize_auth_key(KEY)
        try:
            protocol.send_message(left, protocol.TASK, {"n": 3}, key=key)
            kind, payload = protocol.recv_message(right, key=key)
            assert kind == protocol.TASK and payload == {"n": 3}
        finally:
            left.close()
            right.close()

    def test_wrong_key_fails_closed(self):
        left, right = self._pair()
        try:
            protocol.send_message(left, protocol.TASK, _Exploding(), key=b"alpha")
            with pytest.raises(AuthenticationError, match="HMAC"):
                protocol.recv_message(right, key=b"beta")
        finally:
            left.close()
            right.close()

    def test_bit_flipped_payload_fails_closed_with_hmac(self):
        # The canary payload would raise AssertionError if unpickled; the
        # tag check must reject the tampered frame first.
        left, right = self._pair()
        key = b"k"
        plan = FaultPlan(seed=3, corrupt_frames=(1,), corrupt_target="payload")
        try:
            protocol.send_message(left, protocol.TASK, _Exploding(), key=key, faults=plan)
            with pytest.raises(AuthenticationError, match="not unpickled"):
                protocol.recv_message(right, key=key)
        finally:
            left.close()
            right.close()

    def test_bit_flipped_magic_is_rejected_with_or_without_hmac(self):
        for key in (None, b"k"):
            left, right = self._pair()
            plan = FaultPlan(corrupt_frames=(1,), corrupt_target="magic")
            try:
                protocol.send_message(left, protocol.TASK, 1, key=key, faults=plan)
                with pytest.raises(protocol.ProtocolError, match="magic"):
                    protocol.recv_message(right, key=key)
            finally:
                left.close()
                right.close()

    def test_plain_frame_rejected_by_keyed_receiver(self):
        left, right = self._pair()
        try:
            protocol.send_message(left, protocol.TASK, _Exploding())
            with pytest.raises(AuthenticationError, match="unauthenticated") as info:
                protocol.recv_message(right, key=b"k")
            assert info.value.peer_plain
        finally:
            left.close()
            right.close()

    def test_auth_frame_rejected_by_keyless_receiver(self):
        left, right = self._pair()
        try:
            protocol.send_message(left, protocol.TASK, _Exploding(), key=b"k")
            with pytest.raises(AuthenticationError, match="no auth key"):
                protocol.recv_message(right)
        finally:
            left.close()
            right.close()

    def test_plain_error_reply_is_reported_without_unpickling(self):
        # The handshake-rejection path: a keyless peer answers a keyed one
        # with a plaintext ERROR.  The keyed receiver must attribute the
        # mismatch WITHOUT unpickling the untrusted payload -- an
        # unauthenticated pickle is an RCE vector, ERROR frames included.
        left, right = self._pair()
        try:
            protocol.send_message(left, protocol.ERROR, (None, _Exploding()))
            with pytest.raises(AuthenticationError, match="discarded unread"):
                protocol.recv_message(right, key=b"k")
        finally:
            left.close()
            right.close()

    def test_oversize_and_truncated_frames_fail_closed_with_hmac(self):
        key = b"k"
        # Oversize: rejected on the header alone, tag never read.
        left, right = self._pair()
        try:
            left.sendall(
                struct.pack(
                    ">4sBQ", protocol.MAGIC_AUTH, protocol.TASK,
                    protocol.MAX_FRAME_BYTES + 1,
                )
            )
            with pytest.raises(protocol.ProtocolError, match="exceeds"):
                protocol.recv_message(right, key=key)
        finally:
            left.close()
            right.close()
        # Truncated: EOF mid-payload is ConnectionClosed, not an unpickle.
        left, right = self._pair()
        try:
            data = pickle.dumps(_Exploding())
            left.sendall(
                struct.pack(">4sBQ", protocol.MAGIC_AUTH, protocol.TASK, len(data))
                + data[: len(data) // 2]
            )
            left.close()
            with pytest.raises(protocol.ConnectionClosed):
                protocol.recv_message(right, key=key)
        finally:
            right.close()

    def test_hello_auth_flag_mismatch_is_attributed(self):
        payload = protocol.hello_payload("worker", auth=False)
        with pytest.raises(AuthenticationError, match="HELLO"):
            protocol.check_hello(payload, expected_role="worker", auth=True)

    def test_hello_version_mismatch_is_attributed(self):
        payload = dict(protocol.hello_payload("worker"), version=999)
        with pytest.raises(protocol.ProtocolError, match="version"):
            protocol.check_hello(payload, expected_role="worker")


# ----------------------------------------------------------------------
# handshake negotiation against a real worker: clean ERROR, never a hang
# ----------------------------------------------------------------------
class TestAuthHandshake:
    def test_keyed_cluster_end_to_end_bit_identical(self):
        instance = _small_instance()
        serial = _serial_marginals(instance)
        workers = [ClusterWorker(auth_key=KEY) for _ in range(2)]
        for worker in workers:
            _serve(worker)
        try:
            with ClusterCoordinator(
                [worker.address for worker in workers], auth_key=KEY
            ) as coordinator:
                merged = {
                    key[0]: marginal
                    for key, marginal in coordinator.stream_ball_marginal_tasks(
                        instance, [(node, 2) for node in instance.free_nodes]
                    )
                }
            assert merged == serial
        finally:
            for worker in workers:
                worker.close()

    def test_keyless_coordinator_rejected_by_keyed_worker(self):
        worker = ClusterWorker(auth_key=KEY)
        _serve(worker)
        try:
            with pytest.raises(protocol.ProtocolError, match="rejected handshake"):
                ClusterCoordinator([worker.address], connect_timeout=10)
        finally:
            worker.close()

    def test_keyed_coordinator_rejects_keyless_worker(self):
        worker = ClusterWorker()
        _serve(worker)
        try:
            with pytest.raises(AuthenticationError):
                ClusterCoordinator([worker.address], connect_timeout=10, auth_key=KEY)
        finally:
            worker.close()

    def test_wrong_key_fails_the_handshake_cleanly(self):
        worker = ClusterWorker(auth_key=KEY)
        _serve(worker)
        try:
            with pytest.raises(protocol.ProtocolError):
                ClusterCoordinator(
                    [worker.address], connect_timeout=10, auth_key="not-the-key"
                )
        finally:
            worker.close()

    def test_version_mismatch_gets_a_clean_error_from_the_worker(self):
        worker = ClusterWorker()
        _serve(worker)
        try:
            with socket.create_connection(worker.address, timeout=10) as sock:
                hello = dict(protocol.hello_payload("coordinator"), version=999)
                protocol.send_message(sock, protocol.HELLO, hello)
                kind, payload = protocol.recv_message(sock)
                assert kind == protocol.ERROR
                assert "version" in payload[1]
        finally:
            worker.close()


# ----------------------------------------------------------------------
# frame faults on a live cluster: requeue keeps results bit-identical
# ----------------------------------------------------------------------
class TestFrameFaults:
    def _cluster(self, plans, key=None):
        workers = [
            ClusterWorker(auth_key=key, fault_plan=plan) for plan in plans
        ]
        for worker in workers:
            _serve(worker)
        return workers

    def test_truncated_result_frame_requeues_bit_identically(self):
        # Worker 0 truncates its first RESULT frame mid-payload and tears
        # the connection down; the coordinator must requeue the task and
        # the merged marginals must still equal the serial loop.
        instance = _small_instance()
        serial = _serial_marginals(instance)
        plan = FaultPlan(truncate_frames=(1,), frame_kinds=(protocol.RESULT,))
        workers = self._cluster([plan, None])
        try:
            with ClusterCoordinator(
                [worker.address for worker in workers], reconnect=False
            ) as coordinator:
                merged = {
                    key[0]: marginal
                    for key, marginal in coordinator.stream_ball_marginal_tasks(
                        instance,
                        [(node, 2) for node in instance.free_nodes],
                        chunk_size=1,
                    )
                }
                assert coordinator.requeued > 0
            assert merged == serial
        finally:
            for worker in workers:
                worker.close()

    def test_corrupted_result_frame_detected_by_hmac_and_requeued(self):
        # A payload bit flip is invisible to the framing but not to the
        # tag: the keyed coordinator rejects the frame before unpickling,
        # declares the worker dead, and requeues -- bit-identical merge.
        instance = _small_instance()
        serial = _serial_marginals(instance)
        plan = FaultPlan(
            seed=5,
            corrupt_frames=(1,),
            corrupt_target="payload",
            frame_kinds=(protocol.RESULT,),
        )
        workers = self._cluster([plan, None], key=KEY)
        try:
            with ClusterCoordinator(
                [worker.address for worker in workers],
                auth_key=KEY,
                reconnect=False,
            ) as coordinator:
                merged = {
                    key[0]: marginal
                    for key, marginal in coordinator.stream_ball_marginal_tasks(
                        instance,
                        [(node, 2) for node in instance.free_nodes],
                        chunk_size=1,
                    )
                }
                assert coordinator.requeued > 0
            assert merged == serial
        finally:
            for worker in workers:
                worker.close()

    def test_stalled_heartbeats_declare_the_worker_dead(self):
        # The worker swallows every heartbeat echo; with no other traffic
        # the coordinator's liveness timeout (not EOF) must catch it.
        workers = self._cluster([FaultPlan(stall_heartbeats_after=0), None])
        try:
            with ClusterCoordinator(
                [worker.address for worker in workers],
                heartbeat_interval=0.1,
                heartbeat_timeout=1.0,
                reconnect=False,
            ) as coordinator:
                _wait_until(
                    lambda: coordinator.live_worker_count == 1,
                    timeout=15,
                    message="heartbeat timeout to fire",
                )
                # The survivor still serves work.
                assert coordinator.submit_task("ping", 9).result(timeout=30) == 9
        finally:
            for worker in workers:
                worker.close()

    def test_dropped_heartbeat_frames_also_trip_the_timeout(self):
        plan = FaultPlan(
            drop_frames=tuple(range(1, 200)), frame_kinds=(protocol.HEARTBEAT,)
        )
        workers = self._cluster([plan])
        try:
            with ClusterCoordinator(
                [workers[0].address],
                heartbeat_interval=0.1,
                heartbeat_timeout=1.0,
                reconnect=False,
            ) as coordinator:
                _wait_until(
                    lambda: coordinator.live_worker_count == 0,
                    timeout=15,
                    message="dropped heartbeats to kill the worker",
                )
                with pytest.raises(ClusterError, match="no live"):
                    coordinator.submit_task("ping", 1)
        finally:
            for worker in workers:
                worker.close()


# ----------------------------------------------------------------------
# elastic membership: reconnect, mid-stream join, restart, degrade
# ----------------------------------------------------------------------
class TestElasticMembership:
    def test_severed_connection_heals_by_reconnection(self):
        # Sever the TCP connection under the coordinator; the backoff
        # thread must re-dial, the worker (back in accept) must rejoin,
        # and spec-bound work must still stream bit-identically -- the
        # spec re-ships lazily on the fresh connection.
        instance = _small_instance()
        serial = _serial_marginals(instance)
        worker = ClusterWorker()
        _serve(worker)
        try:
            with ClusterCoordinator([worker.address]) as coordinator:
                assert coordinator.submit_task("ping", 1).result(timeout=30) == 1
                severed = coordinator.workers[0]
                severed.sock.shutdown(socket.SHUT_RDWR)
                _wait_until(
                    lambda: not severed.alive,
                    timeout=20,
                    message="the severed connection to be declared dead",
                )
                _wait_until(
                    lambda: coordinator.workers[0] is not severed
                    and coordinator.workers[0].alive,
                    timeout=20,
                    message="reconnection",
                )
                merged = {
                    key[0]: marginal
                    for key, marginal in coordinator.stream_ball_marginal_tasks(
                        instance, [(node, 2) for node in instance.free_nodes]
                    )
                }
            assert merged == serial
        finally:
            worker.close()

    def test_worker_joining_mid_stream_takes_queued_work(self):
        instance = _small_instance()
        serial = _serial_marginals(instance)
        first, second = ClusterWorker(), ClusterWorker()
        _serve(first)
        _serve(second)
        try:
            with ClusterCoordinator([first.address], reconnect=False) as coordinator:
                # Pin the only worker on a slow task so every ball chunk
                # queues up behind it, then admit the newcomer mid-stream
                # (from a timer, while the stream is blocked in
                # as_completed): rebalancing must steal queued chunks, so
                # the first results arrive well before the sleeper
                # unblocks at 2s.
                coordinator.submit(time.sleep, 2.0)
                stream = coordinator.stream_ball_marginal_tasks(
                    instance,
                    [(node, 2) for node in instance.free_nodes],
                    chunk_size=1,
                )
                joiner = threading.Timer(
                    0.4, coordinator.add_worker, args=[second.address]
                )
                joiner.start()
                started = time.monotonic()
                first_arrival = None
                merged = {}
                for key, marginal in stream:
                    if first_arrival is None:
                        first_arrival = time.monotonic() - started
                    merged[key[0]] = marginal
                joiner.join()
                assert len(coordinator.workers) == 2
                assert first_arrival is not None and first_arrival < 1.5, (
                    f"first result took {first_arrival}s: the joined worker "
                    "was not given a share of the queue"
                )
            assert merged == serial
        finally:
            first.close()
            second.close()

    def test_coordinator_restart_reconnects_and_reproduces(self):
        # Workers survive their coordinator: a new coordinator over the
        # same addresses handshakes afresh (the worker returned to accept)
        # and reproduces the exact same chain samples.
        instance = SamplingInstance(hardcore_model(cycle_graph(12), 1.5), {0: 0})
        workers = [ClusterWorker() for _ in range(2)]
        for worker in workers:
            _serve(worker)
        addresses = [worker.address for worker in workers]
        try:
            with ClusterCoordinator(addresses) as coordinator:
                before = coordinator.chain_samples(
                    instance, "glauber", 30, seeds=list(range(4))
                )
            with ClusterCoordinator(addresses) as coordinator:
                after = coordinator.chain_samples(
                    instance, "glauber", 30, seeds=list(range(4))
                )
            assert after == before
            serial = Runtime().run_chains(
                "glauber", instance, 30, seeds=list(range(4))
            )
            assert after == serial
        finally:
            for worker in workers:
                worker.close()

    def test_capacity_weights_reach_the_coordinator_and_bias_dispatch(self):
        light, heavy = ClusterWorker(capacity=1), ClusterWorker(capacity=3)
        _serve(light)
        _serve(heavy)
        try:
            with ClusterCoordinator(
                [light.address, heavy.address], reconnect=False
            ) as coordinator:
                assert [worker.capacity for worker in coordinator.workers] == [1, 3]
                # Whitebox: with equal queue depth the capacity-3 worker is
                # the less loaded one and must win dispatch.
                with coordinator._lock:
                    coordinator.workers[0].inflight[10**9] = None
                    coordinator.workers[1].inflight[10**9 + 1] = None
                    picked = coordinator._pick_worker()
                    assert picked is coordinator.workers[1]
                    coordinator.workers[0].inflight.clear()
                    coordinator.workers[1].inflight.clear()
        finally:
            light.close()
            heavy.close()

    def test_all_workers_lost_with_degrade_local_stays_bit_identical(self):
        instance = _small_instance()
        serial = _serial_marginals(instance)
        worker = ClusterWorker()
        _serve(worker)
        with ClusterCoordinator(
            [worker.address], reconnect=False, degrade="local"
        ) as coordinator:
            assert coordinator.submit_task("ping", 1).result(timeout=30) == 1
            worker.close()  # no revival possible
            coordinator.workers[0].sock.shutdown(socket.SHUT_RDWR)
            _wait_until(
                lambda: coordinator.live_worker_count == 0,
                timeout=15,
                message="worker loss",
            )
            with pytest.warns(RuntimeWarning, match="degrade"):
                merged = {
                    key[0]: marginal
                    for key, marginal in coordinator.stream_ball_marginal_tasks(
                        instance, [(node, 2) for node in instance.free_nodes]
                    )
                }
        assert merged == serial

    def test_degrade_raise_is_still_the_default_failure_mode(self):
        worker = ClusterWorker()
        _serve(worker)
        with ClusterCoordinator([worker.address], reconnect=False) as coordinator:
            worker.close()
            coordinator.workers[0].sock.shutdown(socket.SHUT_RDWR)
            _wait_until(
                lambda: coordinator.live_worker_count == 0,
                timeout=15,
                message="worker loss",
            )
            with pytest.raises(ClusterError, match="no live"):
                coordinator.submit_task("ping", 1)

    def test_runtime_degrade_knob_reaches_the_facade(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(10), 1.0), {0: 0})
        serial = Runtime().run_chains("glauber", instance, 25, seeds=[0, 1])
        worker = ClusterWorker()
        _serve(worker)
        with Runtime(
            "cluster", addresses=[worker.address], degrade="local"
        ) as runtime:
            coordinator = runtime.cluster_client()
            assert coordinator.degrade == "local"
            worker.close()
            coordinator.workers[0].sock.shutdown(socket.SHUT_RDWR)
            _wait_until(
                lambda: coordinator.live_worker_count == 0,
                timeout=15,
                message="worker loss",
            )
            with pytest.warns(RuntimeWarning, match="degrade"):
                degraded = runtime.run_chains("glauber", instance, 25, seeds=[0, 1])
        assert degraded == serial

    def test_requeued_tasks_late_result_is_dropped(self):
        # Out-of-order RESULT for an already-requeued task: simulate the
        # requeue by moving the task off the worker's in-flight map, then
        # let the (now stale) RESULT arrive -- it must be dropped without
        # resolving or crashing anything, and the worker stays usable.
        worker = ClusterWorker()
        _serve(worker)
        try:
            with ClusterCoordinator([worker.address], reconnect=False) as coordinator:
                coordinator.submit(time.sleep, 0.5)
                future = coordinator.submit_task("ping", "late")
                with coordinator._lock:
                    [bound] = [
                        task
                        for task in coordinator.workers[0].inflight.values()
                        if task is not None and task.kind == "ping"
                    ]
                    # The requeue path's bookkeeping: the id leaves the map.
                    coordinator.workers[0].inflight.pop(bound.task_id)
                time.sleep(1.0)  # the stale RESULT arrives and is dropped
                assert not future.done()
                assert coordinator.live_worker_count == 1
                assert coordinator.submit_task("ping", "next").result(
                    timeout=30
                ) == "next"
        finally:
            worker.close()


# ----------------------------------------------------------------------
# stats wire upgrade: failure counts distribute across backends
# ----------------------------------------------------------------------
class TestStatsWire:
    def test_jvv_rejection_stats_identical_across_backends(self):
        from repro.sampling.jvv import jvv_chain_stats

        instance = SamplingInstance(hardcore_model(cycle_graph(8), 1.2), {0: 0})
        serial = jvv_chain_stats(instance, 40, n_chains=3, seed=5)
        assert sum(serial[1]) > 0  # the scenario actually rejects
        batched = jvv_chain_stats(
            instance, 40, n_chains=3, seed=5, runtime=Runtime("batched", n_chains=3)
        )
        process = jvv_chain_stats(
            instance,
            40,
            n_chains=3,
            seed=5,
            runtime=Runtime("process", n_chains=3, n_workers=2),
        )
        assert batched == serial
        assert process == serial
        workers = [ClusterWorker() for _ in range(2)]
        for worker in workers:
            _serve(worker)
        try:
            with Runtime(
                "cluster", addresses=[worker.address for worker in workers]
            ) as runtime:
                cluster = jvv_chain_stats(
                    instance, 40, n_chains=3, seed=5, runtime=runtime
                )
            assert cluster == serial
        finally:
            for worker in workers:
                worker.close()

    def test_chain_block_stats_flag_round_trips_the_wire(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(8), 1.2), {0: 0})
        worker = ClusterWorker()
        _serve(worker)
        try:
            with ClusterCoordinator([worker.address]) as coordinator:
                states, counts = coordinator.chain_samples(
                    instance, "jvv", 30, seeds=[0, 1, 2], stats=True
                )
            assert len(states) == 3 and len(counts) == 3
            assert all(isinstance(count, int) for count in counts)
            plain = Runtime("batched", n_chains=3).run_chains(
                "jvv", instance, 30, seeds=[0, 1, 2]
            )
            assert states == plain
        finally:
            worker.close()

    def test_ungated_kernels_report_zero_counts(self):
        from repro.runtime.shards import run_chain_blocks

        instance = SamplingInstance(hardcore_model(cycle_graph(8), 1.0), {0: 0})
        states, counts = run_chain_blocks(
            instance, "glauber", 20, seeds=[0, 1], n_workers=1, stats=True
        )
        assert counts == [0, 0]
        assert states == Runtime().run_chains("glauber", instance, 20, seeds=[0, 1])


# ----------------------------------------------------------------------
# subprocess workers: hard crashes and leak-proof cleanup
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestSubprocessChaos:
    def test_kill_after_n_tasks_requeues_bit_identically(self):
        # The armed worker hard-exits (os._exit) after two completed
        # tasks -- the OOM-killer scenario.  The merged marginals must
        # still equal the serial loop.
        instance = _small_instance()
        serial = _serial_marginals(instance)
        plans = [FaultPlan(kill_after_tasks=2), None]
        with spawn_workers(2, fault_plans=plans) as pool:
            with ClusterCoordinator(pool.addresses, reconnect=False) as coordinator:
                merged = {
                    key[0]: marginal
                    for key, marginal in coordinator.stream_ball_marginal_tasks(
                        instance,
                        [(node, 2) for node in instance.free_nodes],
                        chunk_size=1,
                    )
                }
                assert coordinator.live_worker_count == 1
            assert not pool.alive(0)
        assert merged == serial

    def test_authenticated_subprocess_cluster_round_trip(self):
        instance = SamplingInstance(hardcore_model(cycle_graph(10), 1.0), {0: 0})
        serial = Runtime().run_chains("glauber", instance, 20, seeds=[0, 1])
        with spawn_workers(2, auth_key=KEY) as pool:
            with ClusterCoordinator(pool.addresses, auth_key=KEY) as coordinator:
                keyed = coordinator.chain_samples(
                    instance, "glauber", 20, seeds=[0, 1]
                )
        assert keyed == serial

    def test_abandoned_pool_is_reaped_by_the_finalizer(self):
        import gc

        pool = spawn_workers(1)
        process = pool.processes[0]
        assert pool.alive(0)
        del pool  # nobody called terminate(); the GC finalizer must
        gc.collect()
        _wait_until(
            lambda: process.poll() is not None,
            timeout=15,
            message="the finalizer to reap the abandoned worker",
        )

    def test_double_kill_and_terminate_are_idempotent(self):
        pool = spawn_workers(1)
        pool.kill(0)
        pool.kill(0)  # second kill of a reaped process must not raise
        pool.terminate()
        pool.terminate()
        assert pool._terminated

    def test_spawn_failure_surfaces_worker_stderr(self):
        with pytest.raises(RuntimeError, match="worker stderr"):
            spawn_workers(1, host="256.0.0.1")
