"""Property tests: variable elimination agrees with brute-force enumeration."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gibbs import eliminate_marginal, eliminate_partition_function
from repro.gibbs.elimination import factor_tables_from
from repro.models import coloring_model, hardcore_model, two_spin_model
from repro.graphs import cycle_graph, path_graph, star_graph
from tests.conftest import brute_force_marginal, brute_force_partition_function


def _tables(distribution):
    return factor_tables_from(distribution.factors, distribution.alphabet)


class TestPartitionFunction:
    @pytest.mark.parametrize("n", [2, 3, 5, 7])
    def test_hardcore_path_matches_fibonacci(self, n):
        # With fugacity 1, the number of independent sets of a path P_n is
        # the Fibonacci number F(n + 2).
        distribution = hardcore_model(path_graph(n), fugacity=1.0)
        fib = [1, 1]
        while len(fib) < n + 3:
            fib.append(fib[-1] + fib[-2])
        z = eliminate_partition_function(
            _tables(distribution), distribution.nodes, distribution.alphabet, {}
        )
        assert z == pytest.approx(fib[n + 1])

    def test_coloring_cycle_chromatic_polynomial(self):
        # Proper q-colorings of a cycle C_n: (q-1)^n + (-1)^n (q-1).
        distribution = coloring_model(cycle_graph(5), num_colors=3)
        z = eliminate_partition_function(
            _tables(distribution), distribution.nodes, distribution.alphabet, {}
        )
        assert z == pytest.approx((3 - 1) ** 5 + (-1) ** 5 * (3 - 1))

    def test_conditional_partition_function(self):
        distribution = hardcore_model(cycle_graph(5), fugacity=2.0)
        z_conditional = eliminate_partition_function(
            _tables(distribution), distribution.nodes, distribution.alphabet, {0: 1}
        )
        assert z_conditional == pytest.approx(
            brute_force_partition_function(distribution, {0: 1})
        )

    def test_infeasible_pinning_gives_zero(self):
        distribution = hardcore_model(path_graph(3), fugacity=1.0)
        z = eliminate_partition_function(
            _tables(distribution), distribution.nodes, distribution.alphabet, {0: 1, 1: 1}
        )
        assert z == 0.0

    def test_node_without_factors_counts_alphabet(self):
        # A lone factorless node multiplies Z by the alphabet size.
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        graph.add_edge(0, 1)
        graph.add_node(2)
        distribution = hardcore_model(graph, fugacity=1.0)
        # Remove the vertex factor of node 2 to make it truly factorless.
        factors = [f for f in distribution.factors if 2 not in f.scope]
        z = eliminate_partition_function(
            factor_tables_from(factors, distribution.alphabet),
            distribution.nodes,
            distribution.alphabet,
            {},
        )
        assert z == pytest.approx(3 * 2)


class TestMarginals:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda g: hardcore_model(g, fugacity=0.7),
            lambda g: two_spin_model(g, beta=0.5, gamma=1.4, field=0.9),
            lambda g: coloring_model(g, num_colors=3),
        ],
    )
    @pytest.mark.parametrize("graph_factory", [lambda: path_graph(5), lambda: cycle_graph(5), lambda: star_graph(4)])
    def test_marginal_matches_brute_force(self, factory, graph_factory):
        distribution = factory(graph_factory())
        for node in list(distribution.nodes)[:3]:
            expected = brute_force_marginal(distribution, node)
            computed = eliminate_marginal(
                _tables(distribution), distribution.nodes, distribution.alphabet, {}, node
            )
            for value in distribution.alphabet:
                assert computed[value] == pytest.approx(expected[value], abs=1e-9)

    def test_marginal_with_pinning(self):
        distribution = hardcore_model(cycle_graph(6), fugacity=1.3)
        pinning = {0: 1, 3: 0}
        expected = brute_force_marginal(distribution, 2, pinning)
        computed = eliminate_marginal(
            _tables(distribution), distribution.nodes, distribution.alphabet, pinning, 2
        )
        for value in distribution.alphabet:
            assert computed[value] == pytest.approx(expected[value], abs=1e-9)

    def test_marginal_of_pinned_node_is_point_mass(self):
        distribution = hardcore_model(path_graph(4), fugacity=1.0)
        computed = eliminate_marginal(
            _tables(distribution), distribution.nodes, distribution.alphabet, {1: 0}, 1
        )
        assert computed == {0: 1.0, 1: 0.0}

    def test_marginal_infeasible_pinning_raises(self):
        distribution = hardcore_model(path_graph(3), fugacity=1.0)
        with pytest.raises(ValueError):
            eliminate_marginal(
                _tables(distribution),
                distribution.nodes,
                distribution.alphabet,
                {0: 1, 1: 1},
                2,
            )

    def test_marginal_unknown_node_raises(self):
        distribution = hardcore_model(path_graph(3), fugacity=1.0)
        with pytest.raises(ValueError):
            eliminate_marginal(
                _tables(distribution), distribution.nodes, distribution.alphabet, {}, 99
            )


class TestEliminationProperties:
    @given(
        fugacity=st.floats(min_value=0.1, max_value=3.0),
        n=st.integers(min_value=3, max_value=7),
        pin_bits=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=25, deadline=None)
    def test_hardcore_cycle_elimination_equals_enumeration(self, fugacity, n, pin_bits):
        distribution = hardcore_model(cycle_graph(n), fugacity=fugacity)
        # Derive a (possibly infeasible) pinning from the random bits and
        # keep only feasible ones.
        pinning = {}
        if pin_bits & 1:
            pinning[0] = 1
        if pin_bits & 2:
            pinning[2] = 0
        expected = brute_force_partition_function(distribution, pinning)
        computed = eliminate_partition_function(
            _tables(distribution), distribution.nodes, distribution.alphabet, pinning
        )
        assert computed == pytest.approx(expected, rel=1e-9)

    @given(
        beta=st.floats(min_value=0.1, max_value=2.0),
        gamma=st.floats(min_value=0.1, max_value=2.0),
        field=st.floats(min_value=0.2, max_value=2.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_two_spin_marginals_sum_to_one(self, beta, gamma, field):
        distribution = two_spin_model(path_graph(5), beta=beta, gamma=gamma, field=field)
        marginal = eliminate_marginal(
            _tables(distribution), distribution.nodes, distribution.alphabet, {}, 2
        )
        assert sum(marginal.values()) == pytest.approx(1.0)
        assert all(p >= 0 for p in marginal.values())
