"""Unit tests for the Network / LocalView simulation substrate."""

import networkx as nx
import pytest

from repro.graphs import cycle_graph, grid_graph, path_graph
from repro.localmodel import Network


class TestNetwork:
    def test_requires_nonempty_graph(self):
        with pytest.raises(ValueError):
            Network(nx.Graph())

    def test_ids_are_consecutive(self):
        network = Network(grid_graph(2, 3))
        assert sorted(network.ids.values()) == list(range(6))

    def test_node_randomness_is_reproducible_and_independent(self):
        network_a = Network(cycle_graph(5), seed=7)
        network_b = Network(cycle_graph(5), seed=7)
        assert network_a.rng(0).random() == network_b.rng(0).random()
        assert network_a.rng(0).random() != pytest.approx(Network(cycle_graph(5), seed=8).rng(0).random())
        # Different nodes get different streams.
        assert network_a.rng(1).random() != pytest.approx(network_a.rng(2).random())

    def test_salt_gives_independent_streams(self):
        network = Network(cycle_graph(5), seed=1)
        assert network.rng(0, salt=0).random() != pytest.approx(network.rng(0, salt=1).random())

    def test_inputs(self):
        network = Network(path_graph(3))
        network.set_input(1, {"color": "red"})
        assert network.inputs[1] == {"color": "red"}
        with pytest.raises(KeyError):
            network.set_input(9, 1)


class TestLocalView:
    def test_view_contains_exactly_the_ball(self):
        network = Network(cycle_graph(8))
        view = network.view(0, 2)
        assert view.nodes == {6, 7, 0, 1, 2}
        assert view.distances[2] == 2
        # The view graph is the induced subgraph of the ball.
        assert view.subgraph.number_of_edges() == 4

    def test_view_radius_zero(self):
        network = Network(path_graph(4))
        view = network.view(2, 0)
        assert view.nodes == {2}

    def test_view_validation(self):
        network = Network(path_graph(4))
        with pytest.raises(KeyError):
            network.view(9, 1)
        with pytest.raises(ValueError):
            network.view(0, -1)

    def test_view_carries_inputs_and_seeds_of_ball_only(self):
        network = Network(path_graph(6), inputs={0: "a", 3: "b", 5: "c"})
        view = network.view(1, 2)
        assert view.inputs == {0: "a", 3: "b"}
        assert set(view.seeds) == view.nodes

    def test_view_rng_outside_ball_rejected(self):
        network = Network(path_graph(6))
        view = network.view(0, 1)
        with pytest.raises(KeyError):
            view.rng(5)

    def test_view_is_isolated_copy(self):
        network = Network(cycle_graph(6))
        view = network.view(0, 1)
        view.subgraph.add_edge(0, 3)
        assert not network.graph.has_edge(0, 3)

    def test_views_cover_all_nodes(self):
        network = Network(grid_graph(2, 2))
        views = network.views(1)
        assert set(views) == set(network.nodes)
