"""Tests for the belief-propagation inference engine."""

import pytest

from repro.analysis import total_variation
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph, random_tree
from repro.inference import BeliefPropagationInference
from repro.models import coloring_model, hardcore_model, two_spin_model


class TestBeliefPropagation:
    def test_exact_on_trees(self):
        tree = random_tree(9, seed=2)
        distribution = coloring_model(tree, num_colors=3)
        instance = SamplingInstance(distribution, {0: 1})
        engine = BeliefPropagationInference(iterations=12)
        for node in list(instance.free_nodes)[:5]:
            estimate = engine.marginal(instance, node, 0.01)
            truth = instance.target_marginal(node)
            assert total_variation(estimate, truth) < 1e-6

    def test_exact_on_path_two_spin(self):
        distribution = two_spin_model(path_graph(6), beta=0.5, gamma=1.5, field=1.1)
        instance = SamplingInstance(distribution)
        engine = BeliefPropagationInference(iterations=8)
        truth = instance.target_marginal(3)
        assert total_variation(engine.marginal(instance, 3, 0.01), truth) < 1e-6

    def test_colorings_on_cycle_accuracy(self):
        distribution = coloring_model(cycle_graph(8), num_colors=4)
        instance = SamplingInstance(distribution, {0: 0})
        engine = BeliefPropagationInference(iterations=20)
        for node in (2, 4, 6):
            estimate = engine.marginal(instance, node, 0.05)
            truth = instance.target_marginal(node)
            assert total_variation(estimate, truth) <= 0.05

    def test_hard_evidence_propagates(self):
        distribution = coloring_model(path_graph(3), num_colors=3)
        instance = SamplingInstance(distribution, {1: 2})
        engine = BeliefPropagationInference(iterations=5)
        estimate = engine.marginal(instance, 0, 0.01)
        assert estimate[2] == pytest.approx(0.0, abs=1e-9)
        assert engine.marginal(instance, 1, 0.01)[2] == pytest.approx(1.0)

    def test_marginals_shared_run_matches_individual(self):
        distribution = hardcore_model(cycle_graph(6), fugacity=1.0)
        instance = SamplingInstance(distribution)
        engine = BeliefPropagationInference(iterations=15)
        batch = engine.marginals(instance, 0.05)
        for node, marginal in batch.items():
            single = engine.marginal(instance, node, 0.05)
            assert total_variation(marginal, single) < 1e-12

    def test_damping_keeps_distribution_normalised(self):
        distribution = coloring_model(cycle_graph(5), num_colors=3)
        instance = SamplingInstance(distribution)
        engine = BeliefPropagationInference(iterations=10, damping=0.4)
        marginal = engine.marginal(instance, 0, 0.1)
        assert sum(marginal.values()) == pytest.approx(1.0)

    def test_iterations_from_error_schedule(self):
        distribution = hardcore_model(cycle_graph(10), fugacity=0.8)
        instance = SamplingInstance(distribution)
        engine = BeliefPropagationInference(decay_rate=0.5)
        assert engine.locality(instance, 0.001) > engine.locality(instance, 0.5)

    def test_higher_arity_factor_rejected(self):
        from repro.gibbs import Factor, GibbsDistribution

        graph = path_graph(3)
        triple = Factor((0, 1, 2), lambda a, b, c: 1.0)
        distribution = GibbsDistribution(graph, (0, 1), (triple,))
        engine = BeliefPropagationInference(iterations=2)
        with pytest.raises(ValueError):
            engine.marginal(SamplingInstance(distribution), 0, 0.1)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BeliefPropagationInference(iterations=0)
        with pytest.raises(ValueError):
            BeliefPropagationInference(damping=1.0)
        with pytest.raises(ValueError):
            BeliefPropagationInference(decay_rate=1.0)
