"""Tests for the theorem-level reduction functions."""

import pytest

from repro.analysis import multiplicative_error, total_variation
from repro.core import (
    boost_inference,
    exact_sampling_from_inference,
    inference_from_sampling,
    inference_from_ssm,
    sampling_from_inference,
    ssm_rate_from_inference,
)
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.inference import BoundaryPaddedInference, ExactInference, correlation_decay_for
from repro.models import hardcore_model
from repro.sampling.exact import ExactSampler


class TestTheorem32:
    def test_sampling_from_inference_local_and_slocal(self):
        distribution = hardcore_model(cycle_graph(8), fugacity=1.0)
        instance = SamplingInstance(distribution, {0: 1})
        engine = correlation_decay_for(distribution)
        local = sampling_from_inference(instance, engine, 0.1, seed=1, local=True)
        slocal = sampling_from_inference(instance, engine, 0.1, seed=1, local=False)
        for result in (local, slocal):
            assert distribution.weight(result.configuration) > 0
            assert result.configuration[0] == 1
        assert local.rounds > slocal.rounds


class TestTheorem34:
    def test_inference_from_sampling_matches_truth(self):
        distribution = hardcore_model(path_graph(5), fugacity=1.0)
        instance = SamplingInstance(distribution)

        def sampler(inner, error, seed):
            return ExactSampler(inner, seed=seed).sample(), 1

        engine = inference_from_sampling(sampler, num_samples=500, seed=0)
        estimate = engine.marginal(instance, 2, 0.1)
        truth = instance.target_marginal(2)
        assert total_variation(estimate, truth) < 0.1


class TestLemma41:
    def test_boost_inference_controls_multiplicative_error(self):
        distribution = hardcore_model(cycle_graph(8), fugacity=0.9)
        instance = SamplingInstance(distribution, {0: 1})
        boosted = boost_inference(BoundaryPaddedInference(decay_rate=0.5))
        estimate = boosted.marginal(instance, 4, 0.2)
        truth = instance.target_marginal(4)
        assert multiplicative_error(estimate, truth) <= 0.2


class TestTheorem42:
    def test_exact_sampling_from_inference(self):
        distribution = hardcore_model(cycle_graph(6), fugacity=1.0)
        instance = SamplingInstance(distribution)
        result = exact_sampling_from_inference(instance, ExactInference(), seed=0, local=False)
        assert distribution.weight(result.configuration) > 0
        local = exact_sampling_from_inference(instance, ExactInference(), seed=0, local=True)
        assert local.rounds > result.rounds


class TestTheorem51:
    def test_ssm_rate_from_inference_is_monotone_in_radius(self):
        distribution = hardcore_model(cycle_graph(16), fugacity=0.8)
        instance = SamplingInstance(distribution)
        engine = BoundaryPaddedInference(decay_rate=0.5)
        wide = ssm_rate_from_inference(engine, instance, radius=20)
        narrow = ssm_rate_from_inference(engine, instance, radius=6)
        assert wide <= narrow
        assert ssm_rate_from_inference(engine, instance, radius=0) == 1.0

    def test_inference_from_ssm_meets_error(self):
        distribution = hardcore_model(cycle_graph(10), fugacity=0.8)
        instance = SamplingInstance(distribution, {0: 1})
        engine = inference_from_ssm(decay_rate=0.5)
        estimate = engine.marginal(instance, 5, 0.05)
        truth = instance.target_marginal(5)
        assert total_variation(estimate, truth) <= 0.05

    def test_round_trip_inference_to_ssm_to_inference(self):
        # Extract a rate from one engine, build a new engine from that rate,
        # and check the new engine still meets its accuracy promise.
        distribution = hardcore_model(cycle_graph(10), fugacity=0.5)
        instance = SamplingInstance(distribution, {0: 1})
        original = BoundaryPaddedInference(decay_rate=0.4)
        implied_error = ssm_rate_from_inference(original, instance, radius=8)
        rebuilt = inference_from_ssm(decay_rate=0.4)
        estimate = rebuilt.marginal(instance, 5, max(implied_error, 0.05))
        truth = instance.target_marginal(5)
        assert total_variation(estimate, truth) <= max(implied_error, 0.05)
