"""Unit tests for the two-spin / Ising models."""

import math

import pytest

from repro.graphs import cycle_graph, path_graph
from repro.models import hardcore_model, ising_model, two_spin_model


class TestTwoSpinModel:
    def test_weight_matrix(self):
        distribution = two_spin_model(path_graph(2), beta=2.0, gamma=3.0, field=1.5)
        assert distribution.weight({0: 1, 1: 1}) == pytest.approx(2.0 * 1.5 * 1.5)
        assert distribution.weight({0: 0, 1: 0}) == pytest.approx(3.0)
        assert distribution.weight({0: 1, 1: 0}) == pytest.approx(1.5)

    def test_hardcore_as_special_case(self):
        lam = 0.9
        hardcore = hardcore_model(cycle_graph(5), fugacity=lam)
        as_two_spin = two_spin_model(cycle_graph(5), beta=0.0, gamma=1.0, field=lam)
        assert as_two_spin.partition_function() == pytest.approx(hardcore.partition_function())
        for value, probability in hardcore.marginal(2).items():
            assert as_two_spin.marginal(2)[value] == pytest.approx(probability)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            two_spin_model(path_graph(2), beta=-0.1, gamma=1.0)
        with pytest.raises(ValueError):
            two_spin_model(path_graph(2), beta=1.0, gamma=1.0, field=0.0)

    def test_antiferromagnetic_flag(self):
        assert two_spin_model(path_graph(3), beta=0.5, gamma=1.0).metadata["antiferromagnetic"]
        assert not two_spin_model(path_graph(3), beta=2.0, gamma=1.0).metadata["antiferromagnetic"]

    def test_uniqueness_metadata_depends_on_degree(self):
        # Strongly anti-ferromagnetic hardcore-like model on a high-degree
        # star should be flagged as non-unique, the same parameters on a path
        # as unique.
        from repro.graphs import star_graph
        from repro.models import hardcore_uniqueness_threshold

        lam = 3.0 * hardcore_uniqueness_threshold(5)
        star = two_spin_model(star_graph(5), beta=0.0, gamma=1.0, field=lam)
        path = two_spin_model(path_graph(4), beta=0.0, gamma=1.0, field=lam)
        assert star.metadata["uniqueness"] is False
        assert path.metadata["uniqueness"] is True


class TestIsingModel:
    def test_ising_weights_match_exponential_form(self):
        interaction, field = 0.3, 0.1
        distribution = ising_model(path_graph(2), interaction, field)
        # Ratio of aligned (+,+) to anti-aligned (+,-) weights is
        # exp(2 J) * exp(2 h) / exp(0) after the parametrisation used.
        aligned = distribution.weight({0: 1, 1: 1})
        anti = distribution.weight({0: 1, 1: 0})
        expected_ratio = math.exp(2 * interaction) * math.exp(2 * field)
        assert aligned / anti == pytest.approx(expected_ratio)

    def test_zero_field_symmetry(self):
        distribution = ising_model(cycle_graph(4), interaction=0.4, external_field=0.0)
        marginal = distribution.marginal(0)
        assert marginal[0] == pytest.approx(marginal[1])

    def test_metadata_records_parameters(self):
        distribution = ising_model(path_graph(3), interaction=-0.2, external_field=0.3)
        assert distribution.metadata["model"] == "ising"
        assert distribution.metadata["interaction"] == -0.2
        assert distribution.metadata["external_field"] == 0.3

    def test_antiferromagnetic_ising_prefers_alternation(self):
        distribution = ising_model(path_graph(2), interaction=-0.8)
        joint = distribution.joint_marginal((0, 1))
        assert joint[(0, 1)] > joint[(0, 0)]
        assert joint[(1, 0)] > joint[(1, 1)]
