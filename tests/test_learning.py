"""Learning subsystem tests: gradients, recovery, and backend bit-identity.

The contract of :mod:`repro.learning` is threefold:

* the pseudo-likelihood gradient is *exact* (finite differences agree to
  working precision) and the sufficient statistics match the families'
  log-weight parameterisation;
* both estimators recover the generating weights of a seeded small Ising
  model within documented tolerances (PL: 0.05, CD: 0.15);
* the CD negative phase rides ``Runtime.run_chains`` with explicit
  per-iteration seeds, so fitted weights are bit-identical across the
  serial, batched and process backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.learning import (
    HardcoreFamily,
    IsingFamily,
    Trainer,
    cd_gradient,
    decode_codes,
    empirical_node_marginals,
    encode_configurations,
    factor_value_counts,
    family_by_name,
    feature_counts,
    fit,
    follow_gradient,
    maximize_ascent,
    negative_phase_seeds,
    pl_value_and_grad,
)
from repro.models import hardcore_model, ising_model
from repro.runtime import Runtime

#: Documented weight-recovery tolerances (see docs/ARCHITECTURE.md): the
#: exact-gradient PL estimator lands within 0.05 of the generating weights
#: on the calibration workload; the sampled-gradient CD estimator within
#: 0.15 at its default schedule.
PL_TOLERANCE = 0.05
CD_TOLERANCE = 0.15

TRUE_INTERACTION = 0.4
TRUE_FIELD = 0.25


def _ising_dataset(n=10, samples=400, burn_in=300, seed=42):
    graph = cycle_graph(n)
    distribution = ising_model(
        graph, interaction=TRUE_INTERACTION, external_field=TRUE_FIELD
    )
    instance = SamplingInstance(distribution, {})
    runtime = Runtime("batched", n_chains=samples)
    states = runtime.run_chains("glauber", instance, burn_in, seed=seed)
    family = IsingFamily(graph)
    codes = encode_configurations(family.template().compiled_engine(), states)
    return family, codes


@pytest.fixture(scope="module")
def ising_dataset():
    return _ising_dataset()


class TestSuffstats:
    def test_encode_decode_roundtrip(self):
        distribution = hardcore_model(cycle_graph(6), 1.3)
        compiled = distribution.compiled_engine()
        runtime = Runtime("batched", n_chains=5)
        states = runtime.run_chains(
            "glauber", SamplingInstance(distribution, {}), 30, seed=1
        )
        codes = encode_configurations(compiled, states)
        assert codes.shape == (5, 6)
        assert decode_codes(compiled, codes) == states

    def test_encode_rejects_missing_nodes_and_foreign_values(self):
        compiled = hardcore_model(path_graph(3), 1.0).compiled_engine()
        with pytest.raises(ValueError, match="missing"):
            encode_configurations(compiled, [{0: 0, 1: 0}])
        with pytest.raises(ValueError, match="alphabet"):
            encode_configurations(compiled, [{0: 0, 1: 0, 2: 7}])

    def test_empirical_marginals_and_factor_counts(self):
        compiled = hardcore_model(path_graph(3), 1.0).compiled_engine()
        codes = np.array([[0, 0, 0], [1, 0, 1], [1, 0, 0], [0, 0, 1]])
        marginals = empirical_node_marginals(compiled, codes)
        assert marginals.shape == (3, 2)
        assert np.allclose(marginals.sum(axis=1), 1.0)
        assert np.allclose(marginals[0], [0.5, 0.5])
        counts = factor_value_counts(compiled, codes)
        assert len(counts) == len(compiled.scopes)
        for scope, count in zip(compiled.scopes, counts):
            assert count.shape == (2,) * len(scope)
            assert count.sum() == len(codes)

    def test_feature_counts_match_family_features(self, ising_dataset):
        family, codes = ising_dataset
        phi = family.features(codes)
        assert phi.shape == (codes.shape[0], 2)
        assert feature_counts(family, codes) is not phi  # fresh array
        assert np.array_equal(feature_counts(family, codes), phi)


class TestFamilies:
    def test_ising_features_are_exact_log_weight_gradients(self):
        graph = cycle_graph(6)
        family = IsingFamily(graph)
        theta = np.array([0.3, -0.2])
        distribution = family.build(theta)
        compiled = distribution.compiled_engine()
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 2, size=(8, 6))
        phi = family.features(codes)
        eps = 1e-6
        for j in range(2):
            bump = theta.copy()
            bump[j] += eps
            bumped = family.build(bump).compiled_engine()
            for i, row in enumerate(codes):
                configuration = dict(zip(compiled.nodes, (int(v) for v in row)))
                base = np.log(compiled.configuration_weight(configuration))
                high = np.log(bumped.configuration_weight(configuration))
                assert (high - base) / eps == pytest.approx(phi[i, j], abs=1e-4)

    def test_local_features_match_generic_fallback(self, ising_dataset):
        from repro.learning.families import ModelFamily

        family, codes = ising_dataset
        sample = codes[:16]
        for column in range(codes.shape[1]):
            fast = family.local_features(sample, column)
            generic = ModelFamily.local_features(family, sample, column)
            assert np.allclose(fast, generic)

    def test_hardcore_local_features(self):
        from repro.learning.families import ModelFamily

        family = HardcoreFamily(path_graph(4))
        codes = np.array([[0, 1, 0, 1], [0, 0, 0, 0]])
        local = family.local_features(codes, 1)
        generic = ModelFamily.local_features(family, codes, 1)
        assert np.allclose(local, generic)

    def test_family_by_name(self):
        graph = cycle_graph(4)
        assert isinstance(family_by_name("ising", graph), IsingFamily)
        assert isinstance(family_by_name("hardcore", graph), HardcoreFamily)
        with pytest.raises(ValueError, match="family"):
            family_by_name("potts", graph)


class TestPseudolikelihood:
    @pytest.mark.parametrize(
        "family_name,theta",
        [("ising", np.array([0.3, -0.1])), ("hardcore", np.array([0.4]))],
    )
    def test_gradient_matches_finite_differences(self, family_name, theta):
        graph = cycle_graph(6)
        family = family_by_name(family_name, graph)
        distribution = family.build(theta)
        runtime = Runtime("batched", n_chains=24)
        states = runtime.run_chains(
            "glauber", SamplingInstance(distribution, {}), 60, seed=9
        )
        codes = encode_configurations(family.template().compiled_engine(), states)
        value, grad = pl_value_and_grad(family, codes, theta, l2=0.3)
        eps = 1e-6
        for j in range(family.n_parameters):
            high = theta.copy()
            high[j] += eps
            low = theta.copy()
            low[j] -= eps
            fd = (
                pl_value_and_grad(family, codes, high, l2=0.3)[0]
                - pl_value_and_grad(family, codes, low, l2=0.3)[0]
            ) / (2 * eps)
            assert grad[j] == pytest.approx(fd, abs=1e-5)
        assert value < 0.0  # a log-probability average

    def test_recovers_ising_weights(self, ising_dataset):
        family, codes = ising_dataset
        result = fit(family, codes, method="pl")
        assert result.converged
        errors = np.abs(result.theta - np.array([TRUE_INTERACTION, TRUE_FIELD]))
        assert errors.max() < PL_TOLERANCE
        # The FitResult carries a usable distribution at the fitted weights.
        assert result.distribution.compiled_engine().nodes == family.template().compiled_engine().nodes
        assert result.parameters().keys() == {"interaction", "external_field"}


class TestContrastiveDivergence:
    def test_negative_phase_seeds_are_iteration_keyed(self):
        a = negative_phase_seeds(3, 0, 4)
        b = negative_phase_seeds(3, 1, 4)
        assert len(a) == len(b) == 4
        assert [s.generate_state(2).tolist() for s in a] != [
            s.generate_state(2).tolist() for s in b
        ]

    def test_gradient_is_bit_identical_across_backends(self, ising_dataset):
        family, codes = ising_dataset
        theta = np.array([0.1, 0.1])
        process = Runtime("process", n_chains=1, n_workers=2)
        try:
            grads = [
                cd_gradient(
                    family,
                    codes,
                    theta,
                    runtime=runtime,
                    k=2,
                    n_negative=6,
                    seed=11,
                    iteration=3,
                )[0]
                for runtime in (None, Runtime("batched"), process)
            ]
        finally:
            process.shutdown()
        assert np.array_equal(grads[0], grads[1])
        assert np.array_equal(grads[0], grads[2])

    def test_recovers_ising_weights(self, ising_dataset):
        family, codes = ising_dataset
        result = fit(family, codes, method="cd", runtime="batched", seed=0)
        errors = np.abs(result.theta - np.array([TRUE_INTERACTION, TRUE_FIELD]))
        assert errors.max() < CD_TOLERANCE

    def test_fitted_weights_identical_across_backends(self, ising_dataset):
        family, codes = ising_dataset
        options = dict(method="cd", max_iter=6, n_negative=6, k=2, seed=5)
        process = Runtime("process", n_chains=1, n_workers=2)
        try:
            thetas = [
                fit(family, codes, runtime=runtime, **options).theta
                for runtime in ("serial", "batched", process)
            ]
        finally:
            process.shutdown()
        assert np.array_equal(thetas[0], thetas[1])
        assert np.array_equal(thetas[0], thetas[2])

    def test_persistent_cd_smoke(self, ising_dataset):
        family, codes = ising_dataset
        result = fit(
            family,
            codes,
            method="cd",
            runtime="batched",
            persistent=True,
            max_iter=10,
            n_negative=8,
            seed=1,
        )
        assert np.all(np.isfinite(result.theta))
        assert result.iterations == 10


class TestOptimizers:
    def test_ascent_maximises_a_quadratic(self):
        target = np.array([1.5, -2.0])

        def value_and_grad(theta):
            delta = theta - target
            return -float(delta @ delta), -2 * delta

        result = maximize_ascent(value_and_grad, np.zeros(2), tol=1e-8)
        assert result.converged
        assert np.allclose(result.theta, target, atol=1e-6)
        assert result.trajectory[0]["value"] <= result.value

    def test_follow_gradient_schedule_is_deterministic(self):
        def grad_fn(theta, iteration):
            return -theta + 1.0

        a = follow_gradient(grad_fn, np.zeros(2), step=0.2, decay=0.9, max_iter=20)
        b = follow_gradient(grad_fn, np.zeros(2), step=0.2, decay=0.9, max_iter=20)
        assert np.array_equal(a.theta, b.theta)
        assert len(a.trajectory) == 20


class TestTrainerFacade:
    def test_accepts_configuration_dicts(self, ising_dataset):
        family, codes = ising_dataset
        compiled = family.template().compiled_engine()
        states = decode_codes(compiled, codes[:64])
        trainer = Trainer(family, method="pl", max_iter=30)
        result = trainer.fit(states)
        assert np.all(np.isfinite(result.theta))

    def test_rejects_bad_method_and_theta0(self, ising_dataset):
        family, codes = ising_dataset
        with pytest.raises(ValueError, match="method"):
            Trainer(family, method="mle")
        with pytest.raises(ValueError, match="parameters"):
            Trainer(family, max_iter=2).fit(codes, theta0=np.zeros(5))

    def test_obs_spans_and_metrics(self, ising_dataset):
        from repro import obs

        family, codes = ising_dataset
        handle = obs.enable()
        try:
            fit(family, codes[:64], method="pl", max_iter=5)
            names = {event["name"] for event in handle.tracer.events()}
            assert "learning.fit" in names
            assert "learning.iteration" in names
            assert handle.metrics.counter("learning.fits").value >= 1
        finally:
            obs.disable()


class TestCli:
    def test_repro_fit_json_round_trip(self, capsys):
        import json

        from repro.learning.cli import main

        code = main(
            [
                "--family",
                "ising",
                "--graph",
                "cycle:8",
                "--samples",
                "120",
                "--burn-in",
                "80",
                "--method",
                "pl",
                "--seed",
                "4",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["family"] == "ising"
        assert set(payload["parameters"]) == {"interaction", "external_field"}

    def test_repro_fit_table_output(self, capsys):
        from repro.learning.cli import main

        assert (
            main(
                [
                    "--family",
                    "hardcore",
                    "--graph",
                    "path:6",
                    "--samples",
                    "60",
                    "--burn-in",
                    "40",
                    "--max-iter",
                    "10",
                    "--seed",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "log_fugacity" in out
        assert "fitted" in out
