"""Tests for the inference => sampling reduction (Theorem 3.2)."""

import pytest

from repro.analysis import empirical_distribution, total_variation
from repro.analysis.distances import configuration_key
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.inference import BoundaryPaddedInference, ExactInference, correlation_decay_for
from repro.models import coloring_model, hardcore_model
from repro.sampling import (
    enumerate_target_distribution,
    sample_approximate_local,
    sample_approximate_slocal,
)


class TestSequentialSamplerCorrectness:
    def test_outputs_are_feasible_and_respect_pinning(self):
        distribution = hardcore_model(cycle_graph(8), fugacity=1.0)
        instance = SamplingInstance(distribution, {0: 1, 4: 0})
        engine = correlation_decay_for(distribution)
        for seed in range(10):
            result = sample_approximate_slocal(instance, engine, 0.1, seed=seed)
            configuration = result.configuration
            assert configuration[0] == 1 and configuration[4] == 0
            assert distribution.weight(configuration) > 0
            assert result.success

    def test_exact_inference_gives_exact_sampler_distribution(self):
        # With a zero-error inference oracle the sequential sampler is an
        # exact sampler; check the empirical distribution on a small instance.
        distribution = hardcore_model(path_graph(4), fugacity=1.0)
        instance = SamplingInstance(distribution)
        engine = ExactInference()
        truth = enumerate_target_distribution(instance)
        samples = [
            configuration_key(sample_approximate_slocal(instance, engine, 0.01, seed=s).configuration)
            for s in range(800)
        ]
        empirical = empirical_distribution(samples)
        # 8 outcomes, 800 samples: statistical noise is ~0.05; allow 0.1.
        assert total_variation(empirical, truth) < 0.1

    def test_tv_error_within_requested_bound_per_node(self):
        # Marginal check (cheaper than the full joint): the per-node sampled
        # frequencies must track the true marginals within delta plus noise.
        distribution = coloring_model(cycle_graph(5), num_colors=3)
        instance = SamplingInstance(distribution, {0: 2})
        engine = BoundaryPaddedInference(decay_rate=0.5)
        delta = 0.05
        counts = {node: {} for node in instance.free_nodes}
        runs = 400
        for seed in range(runs):
            configuration = sample_approximate_slocal(instance, engine, delta, seed=seed).configuration
            for node in instance.free_nodes:
                counts[node][configuration[node]] = counts[node].get(configuration[node], 0) + 1
        for node in instance.free_nodes:
            empirical = {value: count / runs for value, count in counts[node].items()}
            truth = instance.target_marginal(node)
            assert total_variation(empirical, truth) < delta + 0.08

    def test_any_ordering_allowed(self):
        distribution = hardcore_model(cycle_graph(6), fugacity=1.0)
        instance = SamplingInstance(distribution)
        engine = ExactInference()
        ordering = [3, 1, 5, 0, 2, 4]
        result = sample_approximate_slocal(instance, engine, 0.1, seed=1, ordering=ordering)
        assert list(result.ordering) == ordering
        assert distribution.weight(result.configuration) > 0

    def test_error_validation(self):
        distribution = hardcore_model(path_graph(3), fugacity=1.0)
        instance = SamplingInstance(distribution)
        from repro.sampling.sequential import SequentialSamplingAlgorithm

        with pytest.raises(ValueError):
            SequentialSamplingAlgorithm(instance, ExactInference(), 0.0)


class TestLocalSimulation:
    def test_local_run_reports_polylog_overhead(self):
        distribution = hardcore_model(cycle_graph(10), fugacity=0.8)
        instance = SamplingInstance(distribution)
        engine = correlation_decay_for(distribution, decay_rate=0.5)
        slocal = sample_approximate_slocal(instance, engine, 0.1, seed=0)
        local = sample_approximate_local(instance, engine, 0.1, seed=0)
        assert local.rounds > slocal.rounds
        assert local.details["mode"] == "local"
        assert "num_colors" in local.details

    def test_local_run_output_is_feasible(self):
        distribution = hardcore_model(cycle_graph(9), fugacity=1.0)
        instance = SamplingInstance(distribution, {0: 1})
        engine = correlation_decay_for(distribution)
        result = sample_approximate_local(instance, engine, 0.1, seed=5)
        assert distribution.weight(result.configuration) > 0
        assert result.configuration[0] == 1


class TestSequentialKernel:
    """The sequential scan as a chain kernel (repro.sampling.kernels)."""

    # The batched==serial states sweep for this kernel lives in the
    # cross-backend conformance harness (tests/test_conformance.py).

    def test_one_scan_is_feasible_and_respects_pinning(self):
        from repro.sampling.sequential import sequential_scan_sample

        distribution = hardcore_model(cycle_graph(8), fugacity=1.0)
        instance = SamplingInstance(distribution, {0: 1, 4: 0})
        state = sequential_scan_sample(instance, len(instance.free_nodes), seed=3)
        assert state[0] == 1 and state[4] == 0
        assert distribution.weight(state) > 0

    def test_dict_engine_reference_agrees_distributionally(self):
        # The dict path is the reference implementation; empirical occupancy
        # after many scans must agree with the compiled path's.
        from repro.sampling.sequential import sequential_scan_sample

        distribution = hardcore_model(path_graph(4), fugacity=1.0)
        instance = SamplingInstance(distribution)
        steps = 4 * len(instance.free_nodes)
        compiled = [
            sum(sequential_scan_sample(instance, steps, seed=s).values())
            for s in range(120)
        ]
        dict_engine = [
            sum(sequential_scan_sample(instance, steps, seed=s, engine="dict").values())
            for s in range(120)
        ]
        assert abs(sum(compiled) - sum(dict_engine)) / 120 < 0.35
