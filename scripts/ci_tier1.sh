#!/usr/bin/env bash
# Tier-1 verification: the full test suite (as pinned in ROADMAP.md) plus an
# explicit run of the engine-equivalence suite, which is the contract between
# the compiled evaluation engine and the reference dict engine.
#
# Usage: scripts/ci_tier1.sh  (from the repository root)
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full suite =="
python -m pytest -x -q

echo "== tier-1: engine equivalence =="
python -m pytest -x -q tests/test_engine_equivalence.py

echo "tier-1 OK"
