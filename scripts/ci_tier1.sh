#!/usr/bin/env bash
# Tier-1 verification: the full test suite (as pinned in ROADMAP.md) plus an
# explicit run of the engine-equivalence suite (the contract between the
# compiled evaluation engine and the reference dict engine), a fast
# runtime smoke (batched-chain determinism and pickling, skipping the
# slow-marked process-pool tests), a kernel smoke (every registered chain
# kernel runs bit-identically on the serial and batched backends through
# the unified run_chains path), a cluster smoke (a coordinator driving
# two real localhost worker subprocesses over the TCP transport, asserting
# bit-identity with the serial loop), a chaos smoke (one of the two
# workers is armed with a deterministic FaultPlan and hard-crashes
# mid-stream; the requeued merge must still be bit-identical), a traced
# cluster smoke (the same run with obs=True must stay bit-identical,
# stitch coordinator and worker spans under one trace id, and export
# trace JSON that repro-trace validates against the event schema), a
# serving smoke (a real `repro-serve` subprocess on a free port takes 8
# concurrent HTTP sample requests, which must coalesce into at most two
# run_chains batches -- observable from the JSON responses alone -- with
# every response bit-identical to a solo run, then drains cleanly on
# SIGTERM), a learning smoke (seeded pseudo-likelihood and contrastive
# divergence fits on a small Ising dataset must recover the generating
# weights within the documented tolerances, with the CD negative phase
# bit-identical between the serial and batched runtimes), an shm smoke
# (the shared-memory transport of the process backend and the packed
# multi-instance code matrix must both be bit-identical to the serial
# loop, and /dev/shm must hold no repro-shm-* segments afterwards) and a
# docs check (the architecture map and testing guide exist and the
# README quickstart executes as a doctest).
#
# Usage: scripts/ci_tier1.sh  (from the repository root)
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full suite =="
python -m pytest -x -q --durations=15

echo "== tier-1: engine equivalence =="
python -m pytest -x -q tests/test_engine_equivalence.py

echo "== tier-1: runtime smoke =="
python -m pytest -x -q -m "not slow" tests/test_runtime.py tests/test_analysis_convergence.py tests/test_cluster.py tests/test_cluster_chaos.py

echo "== tier-1: kernel smoke =="
python - <<'PY'
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.models import hardcore_model
from repro.runtime import Runtime
from repro.sampling import registered_kernels

instance = SamplingInstance(hardcore_model(cycle_graph(8), fugacity=1.2), {0: 1})
kernels = registered_kernels()
expected = {"glauber", "luby-glauber", "jvv", "sequential"}
missing = expected - set(kernels)
assert not missing, f"kernels missing from the registry: {missing}"
serial = Runtime("serial", n_chains=4)
batched = Runtime("batched", n_chains=4)
for name in sorted(kernels):
    reference = serial.run_chains(name, instance, 12, seed=3)
    assert batched.run_chains(name, instance, 12, seed=3) == reference, (
        f"kernel {name} diverges between the serial and batched backends"
    )
print(f"kernel smoke OK: {len(kernels)} kernels, serial == batched per chain")
PY

echo "== tier-1: cluster smoke =="
python - <<'PY'
from repro.cluster.local import spawn_workers
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.inference.ssm_inference import padded_ball_marginal
from repro.models import hardcore_model
from repro.runtime import Runtime

distribution = hardcore_model(cycle_graph(8), fugacity=1.2)
instance = SamplingInstance(distribution, {0: 0})
serial = {node: padded_ball_marginal(instance, node, 1) for node in instance.free_nodes}
distribution.ball_cache().clear()
with spawn_workers(2) as pool:
    with Runtime("cluster", addresses=pool.addresses) as runtime:
        clustered = runtime.ball_marginals(instance, instance.free_nodes, 1)
assert clustered == serial, "cluster marginals diverge from the serial loop"
print("cluster smoke OK: 2 workers, bit-identical marginals")
PY

echo "== tier-1: chaos smoke =="
python - <<'PY'
from repro.cluster import FaultPlan
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.local import spawn_workers
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.inference.ssm_inference import padded_ball_marginal
from repro.models import hardcore_model

distribution = hardcore_model(cycle_graph(10), fugacity=1.2)
instance = SamplingInstance(distribution, {0: 0})
serial = {node: padded_ball_marginal(instance, node, 2) for node in instance.free_nodes}
distribution.ball_cache().clear()
# Worker 0 is armed to hard-crash (os._exit) after completing two tasks --
# the deterministic OOM-killer scenario of repro.cluster.chaos.
plans = [FaultPlan(kill_after_tasks=2), None]
with spawn_workers(2, fault_plans=plans) as pool:
    with ClusterCoordinator(pool.addresses, reconnect=False) as coordinator:
        merged = {
            key[0]: marginal
            for key, marginal in coordinator.stream_ball_marginal_tasks(
                instance, [(node, 2) for node in instance.free_nodes], chunk_size=1
            )
        }
        survivors = coordinator.live_worker_count
assert survivors == 1, f"expected exactly one survivor, saw {survivors}"
assert merged == serial, "post-crash merge diverges from the serial loop"
print("chaos smoke OK: worker crashed mid-stream, bit-identical merge")
PY

echo "== tier-1: traced cluster smoke =="
python - <<'PY'
import json
import os
import tempfile

from repro import obs
from repro.cluster.local import spawn_workers
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.models import hardcore_model
from repro.obs.cli import main as trace_cli
from repro.runtime import Runtime

instance = SamplingInstance(hardcore_model(cycle_graph(10), fugacity=1.2), {0: 1})
with spawn_workers(2) as pool:
    with Runtime("cluster", addresses=pool.addresses) as runtime:
        expected = runtime.run_chains("glauber", instance, 30, seeds=range(6))
    with Runtime("cluster", addresses=pool.addresses, obs=True) as runtime:
        observed = runtime.run_chains("glauber", instance, 30, seeds=range(6))
        events = obs.events()
        assert observed == expected, "tracing changed the sampled states"
        traces = {event["trace"] for event in events}
        procs = {event["proc"] for event in events}
        assert len(traces) == 1, f"expected one trace id, saw {len(traces)}"
        assert {"main", "cluster-worker"} <= procs, f"spans not stitched: {procs}"
        snapshot = runtime.snapshot()
        assert snapshot["cluster"]["live_workers"] == 2
        handle, path = tempfile.mkstemp(suffix=".trace.json")
        os.close(handle)
        obs.export_chrome(path)
try:
    assert trace_cli([path, "--validate"]) == 0, "trace schema validation failed"
    with open(path) as stream:
        payload = json.load(stream)
    assert payload["traceEvents"], "exported trace is empty"
finally:
    os.unlink(path)
print(
    "traced cluster smoke OK: bit-identical, one trace id across "
    f"{len(procs)} procs, schema validated"
)
PY

echo "== tier-1: serving smoke =="
python - <<'PY'
import json
import signal
import subprocess
import sys
import threading

from repro.runtime import Runtime
from repro.serve.client import http_request, sample_payload
from repro.serve.registry import build_instance, encode_state

MODEL = {
    "family": "hardcore",
    "graph": {"kind": "cycle", "n": 16},
    "fugacity": 1.2,
    "pinning": {"0": 1},
}
# max_wait_ms is generous so all 8 requests land inside one window: the
# coalescing assertion below is then deterministic, not racy.
server = subprocess.Popen(
    [
        sys.executable, "-m", "repro.serve",
        "--host", "127.0.0.1", "--port", "0",
        "--model", "hc=" + json.dumps(MODEL),
        "--max-batch", "8", "--max-wait-ms", "250",
    ],
    stdout=subprocess.PIPE,
    text=True,
)
try:
    banner = server.stdout.readline().strip()
    assert banner.startswith("repro-serve listening on "), f"bad banner: {banner!r}"
    host, _, port = banner.rsplit(" ", 1)[-1].rpartition(":")
    port = int(port)

    count, seed_base, n_requests = 20, 100, 8
    responses = [None] * n_requests

    def one(i):
        status, body = http_request(
            host, port, "POST", "/v1/sample",
            sample_payload("hc", kernel="glauber", count=count, seed=seed_base + i),
        )
        responses[i] = (status, body)

    threads = [threading.Thread(target=one, args=(i,)) for i in range(n_requests)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)

    # Solo baseline: the same seeds through a local Runtime, one at a time.
    instance, _ = build_instance(MODEL)
    nodes = list(instance.distribution.graph)
    with Runtime("batched") as runtime:
        for i, (status, body) in enumerate(responses):
            assert status == 200, f"request {i}: HTTP {status}: {body}"
            solo = runtime.run_chains("glauber", instance, count, seed=seed_base + i)
            expected = json.loads(json.dumps([encode_state(nodes, s) for s in solo]))
            assert body["states"] == expected, f"request {i} not bit-identical to solo"

    batches = {body["batch_id"] for _, body in responses}
    sizes = sum(body["batch_size"] for _, body in responses)
    assert len(batches) <= 2, f"8 concurrent requests ran {len(batches)} batches"
    assert sizes >= n_requests, f"batch sizes do not cover the requests: {sizes}"

    server.send_signal(signal.SIGTERM)
    assert server.wait(timeout=30) == 0, "server did not drain cleanly on SIGTERM"
    print(
        f"serving smoke OK: {n_requests} concurrent requests coalesced into "
        f"{len(batches)} batch(es), bit-identical to solo runs, clean drain"
    )
finally:
    if server.poll() is None:
        server.kill()
        server.wait()
PY

echo "== tier-1: learning smoke =="
python - <<'PY'
import numpy as np

from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph
from repro.learning import IsingFamily, encode_configurations, fit
from repro.models import ising_model
from repro.runtime import Runtime

# The documented calibration workload (docs/ARCHITECTURE.md): PL must land
# within 0.05 of the generating weights, CD within 0.15, fully seeded.
TRUE = np.array([0.4, 0.25])
graph = cycle_graph(10)
truth = ising_model(graph, interaction=TRUE[0], external_field=TRUE[1])
data = Runtime("batched", n_chains=400).run_chains(
    "glauber", SamplingInstance(truth, {}), 300, seed=42
)
family = IsingFamily(graph)
codes = encode_configurations(family.template().compiled_engine(), data)

pl = fit(family, codes, method="pl")
assert pl.converged, "PL did not converge on the calibration workload"
pl_err = float(np.abs(pl.theta - TRUE).max())
assert pl_err < 0.05, f"PL recovery error {pl_err:.4f} exceeds 0.05"

cd_serial = fit(family, codes, method="cd", runtime="serial", seed=0, max_iter=40)
cd_batched = fit(family, codes, method="cd", runtime="batched", seed=0, max_iter=40)
assert np.array_equal(cd_serial.theta, cd_batched.theta), (
    "CD fitted weights diverge between the serial and batched runtimes"
)
cd = fit(family, codes, method="cd", runtime="batched", seed=0)
cd_err = float(np.abs(cd.theta - TRUE).max())
assert cd_err < 0.15, f"CD recovery error {cd_err:.4f} exceeds 0.15"
print(
    f"learning smoke OK: PL err {pl_err:.4f} (<0.05), CD err {cd_err:.4f} "
    "(<0.15), serial == batched negative phase"
)
PY

echo "== tier-1: shm smoke =="
python - <<'PY'
from repro.gibbs import SamplingInstance
from repro.graphs import cycle_graph, path_graph
from repro.models import hardcore_model
from repro.runtime import Runtime, chain_seed_sequences
from repro.runtime.shm import leaked_dev_shm_segments, shm_available

before = leaked_dev_shm_segments()
assert not before, f"/dev/shm already holds repro segments: {before}"

instance = SamplingInstance(hardcore_model(cycle_graph(12), fugacity=1.2), {0: 1})
serial = Runtime("serial", n_chains=4)
reference = serial.run_chains("glauber", instance, 25, seed=7)

# The shared-memory transport: a real 2-worker pool, the InstanceSpec and
# result matrix crossing as segment descriptors (inline_threshold=0 so
# this small workload exercises the pool, not the in-process guard).
with Runtime(
    "process", n_chains=4, n_workers=2, transport="shm", inline_threshold=0
) as runtime:
    shipped = runtime.run_chains("glauber", instance, 25, seed=7)
assert shipped == reference, "shm transport diverges from the serial loop"

# Packed multi-instance batching: two models in one padded code matrix,
# each group bit-identical to its own serial chains.
groups = [
    (instance, chain_seed_sequences(7, 4)),
    (
        SamplingInstance(hardcore_model(path_graph(9), fugacity=1.1)),
        chain_seed_sequences(8, 4),
    ),
]
packed = serial.run_packed("glauber", groups, 25)
for index, (member, seeds) in enumerate(groups):
    solo = serial.run_chains("glauber", member, 25, seeds=seeds)
    assert packed[index] == solo, f"packed group {index} diverges from solo"

after = leaked_dev_shm_segments()
assert not after, f"leaked /dev/shm segments: {after}"
mode = "shm" if shm_available() else "pickle-fallback"
print(f"shm smoke OK ({mode}): transport + packed bit-identical, /dev/shm clean")
PY

echo "== tier-1: docs =="
test -f docs/ARCHITECTURE.md || { echo "docs/ARCHITECTURE.md is missing" >&2; exit 1; }
test -f docs/TESTING.md || { echo "docs/TESTING.md is missing" >&2; exit 1; }
python -m doctest README.md

echo "tier-1 OK"
