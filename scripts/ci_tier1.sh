#!/usr/bin/env bash
# Tier-1 verification: the full test suite (as pinned in ROADMAP.md) plus an
# explicit run of the engine-equivalence suite (the contract between the
# compiled evaluation engine and the reference dict engine), a fast
# runtime smoke (batched-chain determinism and pickling, skipping the
# slow-marked process-pool tests) and a docs check (the architecture map
# exists and the README quickstart executes as a doctest).
#
# Usage: scripts/ci_tier1.sh  (from the repository root)
set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: full suite =="
python -m pytest -x -q

echo "== tier-1: engine equivalence =="
python -m pytest -x -q tests/test_engine_equivalence.py

echo "== tier-1: runtime smoke =="
python -m pytest -x -q -m "not slow" tests/test_runtime.py tests/test_analysis_convergence.py

echo "== tier-1: docs =="
test -f docs/ARCHITECTURE.md || { echo "docs/ARCHITECTURE.md is missing" >&2; exit 1; }
python -m doctest README.md

echo "tier-1 OK"
