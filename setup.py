"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools cannot
build PEP 660 editable wheels (no ``wheel`` package available).
"""

from setuptools import setup

setup(
    entry_points={
        "console_scripts": [
            # The cluster worker loop (see repro/cluster/worker.py); the
            # uninstalled equivalent is `python -m repro.cluster`.
            "repro-cluster-worker=repro.cluster.worker:main",
            # Trace-file summariser (see repro/obs/cli.py); the
            # uninstalled equivalent is `python -m repro.obs`.
            "repro-trace=repro.obs.cli:main",
            # The sampling-as-a-service HTTP server (see repro/serve/cli.py);
            # the uninstalled equivalent is `python -m repro.serve`.
            "repro-serve=repro.serve.cli:main",
            # Weight-learning round trip (see repro/learning/cli.py);
            # the uninstalled equivalent is `python -m repro.learning`.
            "repro-fit=repro.learning.cli:main",
        ]
    }
)
